package cache

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/sched"
)

// The metadata intent log closes the paper's last acknowledged-loss
// hole: data blocks of a freshly created file survive a power cut in
// NVRAM, but the namespace operation that names the file rides the
// layout checkpoint and can be lost with it — recovery then has
// survivors pointing at an inode that never became durable and must
// drop them. The log records each acknowledged namespace operation
// as a compact intent in the same battery-backed domain the dirty
// blocks live in: it survives Cache.Crash exactly when the survivors
// do (and is lost with them under volatile policies, where it only
// meters the loss). Intents retire once the covering layout
// checkpoint / log barrier is durable; replay re-executes the
// unretired tail against the recovered layout before survivors are
// written back.

// IntentOp is the namespace operation class an intent records.
type IntentOp uint8

const (
	// IntentCreate covers regular-file and directory creation.
	IntentCreate IntentOp = iota + 1
	// IntentSymlink is a symlink creation; Name2 carries the target.
	IntentSymlink
	// IntentRemove unlinks a file or removes an empty directory.
	IntentRemove
	// IntentRename moves Parent/Name to Parent2/Name2.
	IntentRename
	// IntentTruncate records a size change (truncate or setattr);
	// Size is the resulting length.
	IntentTruncate
)

// String names the op for dumps and logs.
func (op IntentOp) String() string {
	switch op {
	case IntentCreate:
		return "create"
	case IntentSymlink:
		return "symlink"
	case IntentRemove:
		return "remove"
	case IntentRename:
		return "rename"
	case IntentTruncate:
		return "truncate"
	}
	return fmt.Sprintf("op#%d", int(op))
}

// Intent is one recorded namespace operation. The fields are the
// minimum replay needs: the subject inode, the containing directory
// and leaf name (two of each for rename), the type for re-creation
// and the size for truncation.
type Intent struct {
	// Seq orders intents across the whole cache; assigned by Record.
	Seq uint64
	// At is when the operation was acknowledged.
	At sched.Time
	// Op is the operation class.
	Op IntentOp
	// Vol is the volume the operation applied to.
	Vol core.VolumeID
	// File is the subject inode.
	File core.FileID
	// Parent is the containing directory (the source directory for
	// rename).
	Parent core.FileID
	// Parent2 is the destination directory of a rename.
	Parent2 core.FileID
	// Name is the leaf name (the source name for rename).
	Name string
	// Name2 is the rename destination name, or the symlink target.
	Name2 string
	// Type is the created file's type.
	Type core.FileType
	// Size is the resulting length of a truncate.
	Size int64
	// Gen is the subject inode's generation at the operation (layout
	// Version). Replay uses it to tell whether a durable inode under
	// File is the acknowledged incarnation — safe to adopt — or a
	// different life of a recycled slot.
	Gen uint64
}

// IntentLog is the bounded ring of unretired intents. It is its own
// lock domain (a plain mutex, not a kernel one): recording happens
// under the volume namespace lock on whatever task performed the
// operation, and retirement from the sync path.
type IntentLog struct {
	mu      sync.Mutex
	slots   int
	seq     uint64
	total   uint64
	ring    []Intent                 // unretired, ascending Seq
	retired map[core.VolumeID]uint64 // per-volume durable watermark
}

// NewIntentLog builds a log with the given ring capacity.
func NewIntentLog(slots int) *IntentLog {
	if slots <= 0 {
		slots = 256
	}
	return &IntentLog{slots: slots, retired: make(map[core.VolumeID]uint64)}
}

// Record appends an intent (assigning its Seq) and reports whether
// the ring is under pressure — near its bound — in which case the
// caller should force a sync so the covering checkpoint retires the
// backlog. The ring never drops an unretired intent: pressure is the
// signal, the sync is the relief valve.
func (l *IntentLog) Record(now sched.Time, it Intent) (seq uint64, pressure bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	l.total++
	it.Seq = l.seq
	it.At = now
	l.ring = append(l.ring, it)
	return it.Seq, len(l.ring) >= l.slots*3/4
}

// Cap returns the ring capacity (the pressure bound's denominator).
func (l *IntentLog) Cap() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.slots
}

// Total returns the number of intents ever recorded (retired or not).
func (l *IntentLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Seq returns the last assigned sequence number.
func (l *IntentLog) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// RetireVol marks every intent of vol with Seq <= seq as covered by
// a durable checkpoint and drops it from the ring.
func (l *IntentLog) RetireVol(vol core.VolumeID, seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq <= l.retired[vol] {
		return
	}
	l.retired[vol] = seq
	kept := l.ring[:0]
	for _, it := range l.ring {
		if it.Seq > l.retired[it.Vol] {
			kept = append(kept, it)
		}
	}
	l.ring = kept
}

// Unretired returns a copy of the unretired intents in Seq order.
func (l *IntentLog) Unretired() []Intent {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := append([]Intent(nil), l.ring...)
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Len is the number of unretired intents.
func (l *IntentLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ring)
}

// The serialized form ("NVRAM intent dump") lets tooling — cmd/fsck
// -intents — inspect and verify what the battery-backed domain held
// at a crash. Header: magic, version, count. Each record is
// length-prefixed and carries an FNV-1a checksum of its body, so a
// torn or corrupted dump is detected record by record.

const (
	intentMagic   = 0x50464954 // "PFIT"
	intentVersion = 1
)

// EncodeIntents serializes intents (with per-record checksums).
func EncodeIntents(ints []Intent) []byte {
	le := binary.LittleEndian
	buf := make([]byte, 12)
	le.PutUint32(buf[0:], intentMagic)
	le.PutUint32(buf[4:], intentVersion)
	le.PutUint32(buf[8:], uint32(len(ints)))
	for i := range ints {
		body := encodeIntentBody(&ints[i])
		h := fnv.New64a()
		h.Write(body)
		var rec [4]byte
		le.PutUint32(rec[:], uint32(len(body)))
		buf = append(buf, rec[:]...)
		buf = append(buf, body...)
		var sum [8]byte
		le.PutUint64(sum[:], h.Sum64())
		buf = append(buf, sum[:]...)
	}
	return buf
}

func encodeIntentBody(it *Intent) []byte {
	le := binary.LittleEndian
	body := make([]byte, 66, 66+len(it.Name)+len(it.Name2))
	le.PutUint64(body[0:], it.Seq)
	le.PutUint64(body[8:], uint64(it.At))
	body[16] = byte(it.Op)
	body[17] = byte(it.Type)
	le.PutUint32(body[18:], uint32(it.Vol))
	le.PutUint64(body[22:], uint64(it.File))
	le.PutUint64(body[30:], uint64(it.Parent))
	le.PutUint64(body[38:], uint64(it.Parent2))
	le.PutUint64(body[46:], uint64(it.Size))
	le.PutUint64(body[54:], it.Gen)
	le.PutUint16(body[62:], uint16(len(it.Name)))
	le.PutUint16(body[64:], uint16(len(it.Name2)))
	body = append(body, it.Name...)
	body = append(body, it.Name2...)
	return body
}

// DecodeIntents parses and verifies a serialized intent dump. Every
// record's checksum must match and the sequence numbers must be
// strictly increasing.
func DecodeIntents(buf []byte) ([]Intent, error) {
	le := binary.LittleEndian
	if len(buf) < 12 {
		return nil, fmt.Errorf("intent dump: truncated header")
	}
	if le.Uint32(buf[0:]) != intentMagic {
		return nil, fmt.Errorf("intent dump: bad magic %#x", le.Uint32(buf[0:]))
	}
	if v := le.Uint32(buf[4:]); v != intentVersion {
		return nil, fmt.Errorf("intent dump: unsupported version %d", v)
	}
	n := int(le.Uint32(buf[8:]))
	out := make([]Intent, 0, n)
	off := 12
	var last uint64
	for i := 0; i < n; i++ {
		if off+4 > len(buf) {
			return nil, fmt.Errorf("intent dump: record %d truncated", i)
		}
		bl := int(le.Uint32(buf[off:]))
		off += 4
		if bl < 66 || off+bl+8 > len(buf) {
			return nil, fmt.Errorf("intent dump: record %d has bad length %d", i, bl)
		}
		body := buf[off : off+bl]
		off += bl
		h := fnv.New64a()
		h.Write(body)
		if got := le.Uint64(buf[off:]); got != h.Sum64() {
			return nil, fmt.Errorf("intent dump: record %d checksum mismatch", i)
		}
		off += 8
		it, err := decodeIntentBody(body)
		if err != nil {
			return nil, fmt.Errorf("intent dump: record %d: %w", i, err)
		}
		if it.Seq <= last {
			return nil, fmt.Errorf("intent dump: record %d sequence %d not increasing", i, it.Seq)
		}
		last = it.Seq
		out = append(out, it)
	}
	if off != len(buf) {
		return nil, fmt.Errorf("intent dump: %d trailing bytes", len(buf)-off)
	}
	return out, nil
}

func decodeIntentBody(body []byte) (Intent, error) {
	le := binary.LittleEndian
	var it Intent
	it.Seq = le.Uint64(body[0:])
	it.At = sched.Time(le.Uint64(body[8:]))
	it.Op = IntentOp(body[16])
	it.Type = core.FileType(body[17])
	it.Vol = core.VolumeID(le.Uint32(body[18:]))
	it.File = core.FileID(le.Uint64(body[22:]))
	it.Parent = core.FileID(le.Uint64(body[30:]))
	it.Parent2 = core.FileID(le.Uint64(body[38:]))
	it.Size = int64(le.Uint64(body[46:]))
	it.Gen = le.Uint64(body[54:])
	n1 := int(le.Uint16(body[62:]))
	n2 := int(le.Uint16(body[64:]))
	if 66+n1+n2 != len(body) {
		return it, fmt.Errorf("name lengths %d+%d disagree with body size %d", n1, n2, len(body))
	}
	it.Name = string(body[66 : 66+n1])
	it.Name2 = string(body[66+n1:])
	return it, nil
}
