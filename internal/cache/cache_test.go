package cache

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/stats"
)

// fakeStore records flushed blocks and optionally delays, playing
// the role of the storage layout beneath the cache.
type fakeStore struct {
	k       sched.Kernel
	delay   time.Duration
	flushed []core.BlockKey
	jobs    int
}

func (s *fakeStore) FlushBlocks(t sched.Task, blocks []*Block) error {
	if s.delay > 0 {
		t.Sleep(s.delay)
	}
	s.jobs++
	for _, b := range blocks {
		s.flushed = append(s.flushed, b.Key)
	}
	return nil
}

func key(f core.FileID, b core.BlockNo) core.BlockKey {
	return core.BlockKey{Vol: 1, File: f, Blk: b}
}

// newTestCache builds a simulated cache on a fresh virtual kernel.
func newTestCache(seed int64, blocks int, fc FlushConfig) (*sched.VKernel, *Cache, *fakeStore) {
	k := sched.NewVirtual(seed)
	st := &fakeStore{k: k, delay: 5 * time.Millisecond}
	c := New(k, Config{Blocks: blocks, Flush: fc, Simulated: true}, st)
	c.Start()
	return k, c, st
}

// run executes body as a task and drives the kernel to completion
// or until body stops it.
func run(t *testing.T, k *sched.VKernel, body func(tk sched.Task)) {
	t.Helper()
	k.Go("test", func(tk sched.Task) {
		body(tk)
		k.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// fill writes n dirty blocks of file f through the cache.
func fill(tk sched.Task, c *Cache, f core.FileID, n int) {
	for i := 0; i < n; i++ {
		b, hit := c.GetBlock(tk, key(f, core.BlockNo(i)))
		if !hit {
			c.Filled(tk, b, core.BlockSize)
		}
		c.MarkDirty(tk, b)
		c.Release(tk, b)
	}
}

func TestMissThenHit(t *testing.T) {
	k, c, _ := newTestCache(1, 16, UPS())
	run(t, k, func(tk sched.Task) {
		b, hit := c.GetBlock(tk, key(1, 0))
		if hit {
			t.Error("first access hit")
		}
		c.Filled(tk, b, 100)
		c.Release(tk, b)
		b2, hit2 := c.GetBlock(tk, key(1, 0))
		if !hit2 {
			t.Error("second access missed")
		}
		if b2 != b || b2.Size != 100 {
			t.Error("hit returned different frame or size")
		}
		c.Release(tk, b2)
	})
	st := c.CacheStats()
	if st.Lookups.Value() != 2 || st.Hits.Value() != 1 {
		t.Fatalf("lookups=%d hits=%d", st.Lookups.Value(), st.Hits.Value())
	}
}

func TestConcurrentMissWaitsForFiller(t *testing.T) {
	k, c, _ := newTestCache(2, 16, UPS())
	order := []string{}
	k.Go("filler", func(tk sched.Task) {
		b, hit := c.GetBlock(tk, key(1, 0))
		if hit {
			t.Error("filler hit")
		}
		tk.Sleep(10 * time.Millisecond) // simulated disk read
		order = append(order, "filled")
		c.Filled(tk, b, core.BlockSize)
		c.Release(tk, b)
	})
	k.Go("waiter", func(tk sched.Task) {
		tk.Sleep(time.Millisecond) // ensure filler goes first
		b, hit := c.GetBlock(tk, key(1, 0))
		if !hit {
			t.Error("waiter should hit after filler completes")
		}
		order = append(order, "waited")
		c.Release(tk, b)
		k.Stop() // daemons (flusher) would otherwise idle forever
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "filled" {
		t.Fatalf("order = %v", order)
	}
}

func TestFillFailedRetries(t *testing.T) {
	k, c, _ := newTestCache(3, 16, UPS())
	run(t, k, func(tk sched.Task) {
		b, _ := c.GetBlock(tk, key(1, 0))
		c.FillFailed(tk, b)
		b2, hit := c.GetBlock(tk, key(1, 0))
		if hit {
			t.Error("hit after failed fill")
		}
		c.Filled(tk, b2, core.BlockSize)
		c.Release(tk, b2)
	})
}

func TestEvictionLRUOrder(t *testing.T) {
	k, c, _ := newTestCache(4, 4, UPS())
	run(t, k, func(tk sched.Task) {
		for i := 0; i < 4; i++ {
			b, _ := c.GetBlock(tk, key(1, core.BlockNo(i)))
			c.Filled(tk, b, core.BlockSize)
			c.Release(tk, b)
		}
		// Touch block 0 so block 1 is the LRU victim.
		b, hit := c.GetBlock(tk, key(1, 0))
		if !hit {
			t.Fatal("warm block missed")
		}
		c.Release(tk, b)
		// Insert a 5th block, forcing one eviction.
		b5, _ := c.GetBlock(tk, key(1, 100))
		c.Filled(tk, b5, core.BlockSize)
		c.Release(tk, b5)
		if !c.Peek(tk, key(1, 0)) {
			t.Error("recently used block evicted")
		}
		if c.Peek(tk, key(1, 1)) {
			t.Error("LRU block survived")
		}
	})
	if c.CacheStats().Evictions.Value() != 1 {
		t.Fatalf("evictions = %d", c.CacheStats().Evictions.Value())
	}
}

func TestDirtyBlocksNotEvicted(t *testing.T) {
	k, c, store := newTestCache(5, 4, UPS())
	run(t, k, func(tk sched.Task) {
		fill(tk, c, 1, 4) // all four blocks dirty
		// A fifth allocation must flush, not evict dirty data.
		b, _ := c.GetBlock(tk, key(2, 0))
		c.Filled(tk, b, core.BlockSize)
		c.Release(tk, b)
	})
	if len(store.flushed) == 0 {
		t.Fatal("allocation pressure flushed nothing")
	}
	if c.CacheStats().PressureWaits.Value() == 0 {
		t.Fatal("pressure wait not counted")
	}
}

func TestUPSKeepsDirtyUntilPressure(t *testing.T) {
	k, c, store := newTestCache(6, 32, UPS())
	run(t, k, func(tk sched.Task) {
		fill(tk, c, 1, 8)
		tk.Sleep(5 * time.Minute) // far past any update-daemon age
	})
	if len(store.flushed) != 0 {
		t.Fatalf("UPS flushed %d blocks with no pressure", len(store.flushed))
	}
	if c.DirtyCount() != 8 {
		t.Fatalf("dirty count = %d, want 8", c.DirtyCount())
	}
}

func TestWriteDelayFlushesAfter30s(t *testing.T) {
	k, c, store := newTestCache(7, 32, WriteDelay())
	run(t, k, func(tk sched.Task) {
		fill(tk, c, 1, 4)
		tk.Sleep(29 * time.Second)
		if len(store.flushed) != 0 {
			t.Errorf("flushed %d blocks before 30s", len(store.flushed))
		}
		tk.Sleep(15 * time.Second) // past 30s + scan interval
		if len(store.flushed) != 4 {
			t.Errorf("flushed %d blocks after 30s, want 4", len(store.flushed))
		}
	})
}

func TestWriteDelayFlushesWholeFile(t *testing.T) {
	k, c, store := newTestCache(8, 64, WriteDelay())
	run(t, k, func(tk sched.Task) {
		fill(tk, c, 1, 3)
		fill(tk, c, 2, 3)
		tk.Sleep(40 * time.Second)
	})
	if len(store.flushed) != 6 {
		t.Fatalf("flushed %d, want 6", len(store.flushed))
	}
	// Whole-file granularity: each job contains one file's blocks,
	// so 2 jobs (possibly more if the daemon raced, but never 6).
	if store.jobs > 3 {
		t.Fatalf("%d flush jobs for 2 files; whole-file grouping broken", store.jobs)
	}
}

func TestNVRAMLimitBlocksWriters(t *testing.T) {
	// 4-block NVRAM: the 5th dirty block must wait for a flush.
	k, c, store := newTestCache(9, 32, NVRAMPartial(4))
	run(t, k, func(tk sched.Task) {
		fill(tk, c, 1, 8)
	})
	if c.CacheStats().NVRAMWaits.Value() == 0 {
		t.Fatal("no NVRAM waits recorded")
	}
	if len(store.flushed) < 4 {
		t.Fatalf("flushed %d, want >=4", len(store.flushed))
	}
	if c.DirtyCount() > 4 {
		t.Fatalf("dirty %d exceeds NVRAM limit 4", c.DirtyCount())
	}
}

func TestNVRAMWholeFileDrainsFaster(t *testing.T) {
	// Whole-file flushing should need fewer flush jobs than
	// partial-file for the same workload.
	var jobsWhole, jobsPartial int
	{
		k, c, store := newTestCache(10, 64, NVRAMWhole(4))
		run(t, k, func(tk sched.Task) { fill(tk, c, 1, 16) })
		jobsWhole = store.jobs
	}
	{
		k, c, store := newTestCache(10, 64, NVRAMPartial(4))
		run(t, k, func(tk sched.Task) { fill(tk, c, 1, 16) })
		jobsPartial = store.jobs
	}
	if jobsWhole >= jobsPartial {
		t.Fatalf("whole-file jobs %d >= partial %d", jobsWhole, jobsPartial)
	}
}

func TestOverwriteInPlaceSavesNothingToDisk(t *testing.T) {
	k, c, store := newTestCache(11, 16, UPS())
	run(t, k, func(tk sched.Task) {
		for rep := 0; rep < 10; rep++ {
			fill(tk, c, 1, 2) // same 2 blocks overwritten 10 times
		}
	})
	if len(store.flushed) != 0 {
		t.Fatalf("overwrites reached disk: %d", len(store.flushed))
	}
	if c.DirtyCount() != 2 {
		t.Fatalf("dirty = %d, want 2", c.DirtyCount())
	}
}

func TestDiscardFileSavesWrites(t *testing.T) {
	k, c, store := newTestCache(12, 16, UPS())
	run(t, k, func(tk sched.Task) {
		fill(tk, c, 1, 5)
		saved := c.DiscardFile(tk, 1, 1, 0)
		if saved != 5 {
			t.Errorf("saved = %d, want 5", saved)
		}
	})
	if len(store.flushed) != 0 {
		t.Fatal("discarded blocks were flushed")
	}
	if c.CacheStats().SavedWrites.Value() != 5 {
		t.Fatalf("saved_writes = %d", c.CacheStats().SavedWrites.Value())
	}
	if c.DirtyCount() != 0 {
		t.Fatal("dirty blocks remain after discard")
	}
}

func TestDiscardFileFromBlock(t *testing.T) {
	// Truncate semantics: only blocks >= fromBlk go.
	k, c, _ := newTestCache(13, 16, UPS())
	run(t, k, func(tk sched.Task) {
		fill(tk, c, 1, 6)
		saved := c.DiscardFile(tk, 1, 1, 3)
		if saved != 3 {
			t.Errorf("saved = %d, want 3", saved)
		}
		if !c.Peek(tk, key(1, 2)) || c.Peek(tk, key(1, 4)) {
			t.Error("truncate boundary wrong")
		}
	})
}

func TestFlushFileSync(t *testing.T) {
	k, c, store := newTestCache(14, 32, UPS())
	run(t, k, func(tk sched.Task) {
		fill(tk, c, 1, 4)
		fill(tk, c, 2, 2)
		c.FlushFile(tk, 1, 1)
		if c.DirtyCount() != 2 {
			t.Errorf("dirty after FlushFile = %d, want 2 (file 2)", c.DirtyCount())
		}
	})
	if len(store.flushed) != 4 {
		t.Fatalf("flushed %d, want 4", len(store.flushed))
	}
}

func TestFlushAll(t *testing.T) {
	k, c, store := newTestCache(15, 32, UPS())
	run(t, k, func(tk sched.Task) {
		fill(tk, c, 1, 4)
		fill(tk, c, 2, 4)
		c.FlushAll(tk)
		if c.DirtyCount() != 0 {
			t.Errorf("dirty after FlushAll = %d", c.DirtyCount())
		}
	})
	if len(store.flushed) != 8 {
		t.Fatalf("flushed %d, want 8", len(store.flushed))
	}
}

func TestRedirtyDuringFlushWaits(t *testing.T) {
	k, c, _ := newTestCache(16, 8, UPS())
	run(t, k, func(tk sched.Task) {
		fill(tk, c, 1, 1)
		// Start a sync flush in another task, then immediately
		// re-dirty: MarkDirty must wait for flush stability.
		done := false
		k.Go("flusher-caller", func(tk2 sched.Task) {
			c.FlushFile(tk2, 1, 1)
			done = true
		})
		tk.Sleep(time.Millisecond) // let the flush start
		b, _ := c.GetBlock(tk, key(1, 0))
		c.MarkDirty(tk, b) // must block until flush finishes
		if !done {
			t.Error("MarkDirty returned while flush in flight")
		}
		c.Release(tk, b)
	})
}

func TestNoCacheDropBehind(t *testing.T) {
	k, c, _ := newTestCache(17, 8, UPS())
	run(t, k, func(tk sched.Task) {
		b, _ := c.GetBlock(tk, key(1, 0))
		b.NoCache = true
		c.Filled(tk, b, core.BlockSize)
		c.Release(tk, b)
		if c.Peek(tk, key(1, 0)) {
			t.Error("NoCache block retained after release")
		}
	})
}

func TestDirtyHighWaterTracked(t *testing.T) {
	k, c, _ := newTestCache(18, 32, UPS())
	run(t, k, func(tk sched.Task) { fill(tk, c, 1, 10) })
	if c.CacheStats().DirtyHW.Value() != 10 {
		t.Fatalf("high water = %d, want 10", c.CacheStats().DirtyHW.Value())
	}
}

func TestStatsRegister(t *testing.T) {
	k, c, _ := newTestCache(19, 8, UPS())
	set := stats.NewSet()
	c.Stats(set)
	if set.Len() != 10 {
		t.Fatalf("registered %d sources", set.Len())
	}
	_ = k
	if c.String() == "" || c.Policy().Name != "ups" {
		t.Fatal("descriptions wrong")
	}
}

func TestRealKernelCacheSmoke(t *testing.T) {
	// The same cache code must run on the real kernel.
	k := sched.NewReal(1)
	st := &fakeStore{k: k}
	c := New(k, Config{Blocks: 16, Flush: UPS(), Simulated: false}, st)
	c.Start()
	done := make(chan struct{})
	k.Go("user", func(tk sched.Task) {
		defer close(done)
		for i := 0; i < 8; i++ {
			b, hit := c.GetBlock(tk, key(1, core.BlockNo(i)))
			if !hit {
				copy(b.Data, []byte{byte(i)})
				c.Filled(tk, b, core.BlockSize)
			}
			c.MarkDirty(tk, b)
			c.Release(tk, b)
		}
		c.FlushAll(tk)
	})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("real-kernel cache timed out")
	}
	if len(st.flushed) != 8 {
		t.Fatalf("flushed %d, want 8", len(st.flushed))
	}
}
