package cache

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
)

// flakyStore fails the first N flush attempts, then recovers —
// modeling a disk path that comes back (or a layout that briefly has
// no space while the cleaner runs).
type flakyStore struct {
	failures int
	attempts int
	flushed  []core.BlockKey
}

var errInjected = errors.New("injected flush failure")

func (s *flakyStore) FlushBlocks(t sched.Task, blocks []*Block) error {
	s.attempts++
	if s.attempts <= s.failures {
		return errInjected
	}
	for _, b := range blocks {
		s.flushed = append(s.flushed, b.Key)
	}
	return nil
}

func TestFlushFailureKeepsBlocksDirty(t *testing.T) {
	k := sched.NewVirtual(41)
	store := &flakyStore{failures: 1000000} // never succeeds
	c := New(k, Config{Blocks: 8, Flush: WriteDelay(), Simulated: true}, store)
	c.Start()
	k.Go("w", func(tk sched.Task) {
		fill(tk, c, 1, 3)
		tk.Sleep(2 * time.Minute) // several update-daemon cycles
		if c.DirtyCount() != 3 {
			t.Errorf("dirty = %d after failed flushes, want 3 (nothing lost)", c.DirtyCount())
		}
		if store.attempts < 2 {
			t.Errorf("only %d flush attempts; failures not retried", store.attempts)
		}
		k.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(store.flushed) != 0 {
		t.Fatal("failed flushes recorded blocks")
	}
}

func TestFlushRecoversAfterTransientFailure(t *testing.T) {
	k := sched.NewVirtual(42)
	store := &flakyStore{failures: 2}
	c := New(k, Config{Blocks: 8, Flush: WriteDelay(), Simulated: true}, store)
	c.Start()
	k.Go("w", func(tk sched.Task) {
		fill(tk, c, 1, 2)
		tk.Sleep(3 * time.Minute)
		if c.DirtyCount() != 0 {
			t.Errorf("dirty = %d; transient failure never recovered", c.DirtyCount())
		}
		k.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(store.flushed) != 2 {
		t.Fatalf("flushed %d blocks after recovery, want 2", len(store.flushed))
	}
}

func TestPressureSurvivesFlushFailures(t *testing.T) {
	// Allocation pressure with a store that fails a few times: the
	// waiting allocator must not wedge and must proceed once a
	// flush lands.
	k := sched.NewVirtual(43)
	store := &flakyStore{failures: 3}
	c := New(k, Config{Blocks: 4, Flush: UPS(), Simulated: true}, store)
	c.Start()
	done := false
	k.Go("w", func(tk sched.Task) {
		fill(tk, c, 1, 4) // cache entirely dirty
		// Fifth block needs a successful flush to proceed.
		b, _ := c.GetBlock(tk, key(2, 0))
		c.Filled(tk, b, core.BlockSize)
		c.Release(tk, b)
		done = true
		k.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("allocation wedged behind flush failures")
	}
	if store.attempts < 4 {
		t.Fatalf("attempts = %d, want >= 4 (3 failures + success)", store.attempts)
	}
}
