// Package cache implements the framework's file-system block cache:
// LRU lists of dirty and non-dirty blocks, allocation with
// flush-on-pressure, pluggable replacement policies (LRU, random,
// LFU, SLRU, LRU-K) and pluggable flush policies — the Unix
// 30-second-update write-delay policy, the UPS write-saving policy,
// and the NVRAM policies with whole-file or partial-file flushing
// that the paper's experiments compare.
//
// Flushing is asynchronous, performed by a dedicated flusher task:
// one of the paper's "lessons learned" was that making the thread
// that needs a block also perform the flush severely delays it.
package cache

import (
	"repro/internal/core"
	"repro/internal/sched"
)

// Block is one cache frame. Data is nil when the cache is
// instantiated for a simulator — the simulated mover charges copy
// time instead; this is the only difference between the simulated
// and the real cache.
type Block struct {
	Key   core.BlockKey
	Data  []byte
	Size  int // valid bytes, <= core.BlockSize (short tail blocks)
	Valid bool
	Dirty bool

	// Pins holds the block in memory; pinned blocks are never
	// chosen as replacement victims.
	Pins int
	// Busy marks a block whose contents are being read from disk;
	// other tasks wait on the cache's filled condition.
	Busy bool
	// Flushing marks a block the flusher currently writes out;
	// writers wait so the data stays stable during the I/O.
	Flushing bool
	// Writing counts tasks mutating Data in place (BeginWrite ..
	// MarkDirty); the flusher skips such blocks so it never copies a
	// half-updated frame.
	Writing int
	// Borrows counts read-side loans of Data to in-flight zero-copy
	// I/O (an NFS read reply writev'ing the frame to a socket).
	// Writers wait in BeginWrite until the loans are returned; each
	// borrow also holds a pin, so the frame cannot be evicted or
	// discarded out from under the I/O.
	Borrows int
	// NoCache blocks (multimedia drop-behind) go to the free list
	// as soon as they are released.
	NoCache bool

	// DirtySince is when the block last went clean→dirty; the
	// flush policies age on it.
	DirtySince sched.Time
	// LastUsed and Freq feed the replacement policies.
	LastUsed sched.Time
	Freq     int64
	// History holds recent reference times for LRU-K.
	History []sched.Time

	// Intrusive list links, owned by blockList.
	prev, next *Block
	owner      *blockList
	// policyItem lets replacement policies attach their own state.
	policyItem any
	// touched records a hit while the block was pinned, delivered
	// to the replacement policy when the block is released.
	touched bool
}

// FileKey identifies a file for per-file dirty tracking.
type FileKey struct {
	Vol  core.VolumeID
	File core.FileID
}

// blockList is an intrusive doubly-linked list of blocks.
type blockList struct {
	head, tail *Block
	n          int
}

func (l *blockList) pushTail(b *Block) {
	if b.owner != nil {
		panic("cache: block already on a list")
	}
	b.owner = l
	b.prev = l.tail
	b.next = nil
	if l.tail != nil {
		l.tail.next = b
	} else {
		l.head = b
	}
	l.tail = b
	l.n++
}

func (l *blockList) remove(b *Block) {
	if b.owner != l {
		panic("cache: removing block from wrong list")
	}
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		l.head = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	} else {
		l.tail = b.prev
	}
	b.prev, b.next, b.owner = nil, nil, nil
	l.n--
}

func (l *blockList) popHead() *Block {
	b := l.head
	if b != nil {
		l.remove(b)
	}
	return b
}

func (l *blockList) len() int { return l.n }
