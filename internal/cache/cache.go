package cache

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/stats"
)

// BackingStore writes dirty blocks to stable storage. The storage
// layout (or the volume glue above it) implements this; the flusher
// task calls it with the cache lock released. A whole-file flush
// passes every dirty block of the file in one call so a
// log-structured layout can write them contiguously.
type BackingStore interface {
	FlushBlocks(t sched.Task, blocks []*Block) error
}

// FlushConfig selects the flush policy, the experiment variable of
// the paper: when dirty data leaves memory, and at what granularity.
type FlushConfig struct {
	Name string
	// ScanInterval > 0 runs an update daemon that wakes at this
	// period and flushes files whose oldest dirty block is older
	// than MaxAge (the Unix SVR4 30-second-update policy).
	ScanInterval time.Duration
	MaxAge       time.Duration
	// WholeFile selects whole-file flushing: flushing a block takes
	// every dirty block of its file along.
	WholeFile bool
	// MaxDirtyBlocks bounds how many blocks may be dirty at once; 0
	// is unlimited. The NVRAM experiments set it to the NVRAM size,
	// modeling "dirty data may only reside in NVRAM".
	MaxDirtyBlocks int
}

// WriteDelay is the baseline policy: dirty data is written after 30
// seconds by an update daemon that scans every few seconds, flushing
// whole files, as SVR4 does.
func WriteDelay() FlushConfig {
	return FlushConfig{Name: "writedelay", ScanInterval: 5 * time.Second,
		MaxAge: 30 * time.Second, WholeFile: true}
}

// UPS is the write-saving policy: with a UPS protecting the whole
// memory, dirty data stays in the cache until block allocation runs
// out of clean blocks; then the oldest dirty block is flushed (the
// paper's "naive" flush).
func UPS() FlushConfig {
	return FlushConfig{Name: "ups"}
}

// NVRAMWhole allows nvblocks dirty blocks (the NVRAM buffer) and
// flushes the whole file of the oldest dirty block when full.
func NVRAMWhole(nvblocks int) FlushConfig {
	return FlushConfig{Name: "nvram-whole", MaxDirtyBlocks: nvblocks, WholeFile: true}
}

// NVRAMPartial allows nvblocks dirty blocks and flushes only the
// oldest dirty block when full.
func NVRAMPartial(nvblocks int) FlushConfig {
	return FlushConfig{Name: "nvram-partial", MaxDirtyBlocks: nvblocks}
}

// Config sizes and configures a cache.
type Config struct {
	// Blocks is the cache capacity in blocks.
	Blocks int
	// Replace names the replacement policy (see NewReplacePolicy).
	Replace string
	// Flush is the flush policy.
	Flush FlushConfig
	// Simulated caches carry no data arena.
	Simulated bool
}

// Stats is the cache statistics plug-in.
type Stats struct {
	Lookups       *stats.Counter
	Hits          *stats.Counter
	Evictions     *stats.Counter
	FlushedBlocks *stats.Counter
	FlushJobs     *stats.Counter
	SavedWrites   *stats.Counter // dirty blocks discarded before any flush
	PressureWaits *stats.Counter // allocations that had to wait for the flusher
	NVRAMWaits    *stats.Counter // writes that waited for NVRAM space
	DirtyHW       *stats.Counter // high-water mark of dirty blocks
}

// HitRate returns hits/lookups.
func (s *Stats) HitRate() float64 {
	if s.Lookups.Value() == 0 {
		return 0
	}
	return float64(s.Hits.Value()) / float64(s.Lookups.Value())
}

// Register adds the sources to set.
func (s *Stats) Register(set *stats.Set) {
	set.Add(s.Lookups)
	set.Add(s.Hits)
	set.Add(s.Evictions)
	set.Add(s.FlushedBlocks)
	set.Add(s.FlushJobs)
	set.Add(s.SavedWrites)
	set.Add(s.PressureWaits)
	set.Add(s.NVRAMWaits)
	set.Add(s.DirtyHW)
}

// Cache is the file-system block cache.
type Cache struct {
	k     sched.Kernel
	cfg   Config
	store BackingStore

	mu      sched.Mutex
	filled  sched.Cond // Busy blocks became Valid (or failed)
	cleaned sched.Cond // flusher finished some blocks

	index       map[core.BlockKey]*Block
	free        blockList
	dirty       blockList // clean→dirty transition order: oldest first
	dirtyByFile map[FileKey]map[core.BlockNo]*Block
	replace     ReplacePolicy
	dirtyCount  int
	flushing    int

	flushQ    [][]*Block
	flushWork sched.Event

	arena []byte
	st    *Stats
}

// New builds a cache on kernel k backed by store. Call Start to
// spawn the flusher (and update daemon, if the policy has one).
func New(k sched.Kernel, cfg Config, store BackingStore) *Cache {
	if cfg.Blocks <= 0 {
		panic("cache: Config.Blocks must be positive")
	}
	rp, ok := NewReplacePolicy(cfg.Replace, k.Rand())
	if !ok {
		panic(fmt.Sprintf("cache: unknown replacement policy %q", cfg.Replace))
	}
	if s, isSLRU := rp.(*SLRU); isSLRU {
		s.SetProtectedLimit(cfg.Blocks * 2 / 3)
	}
	c := &Cache{
		k:           k,
		cfg:         cfg,
		store:       store,
		mu:          k.NewMutex("cache"),
		index:       make(map[core.BlockKey]*Block),
		dirtyByFile: make(map[FileKey]map[core.BlockNo]*Block),
		replace:     rp,
		flushWork:   k.NewEvent("cache.flushwork"),
		st: &Stats{
			Lookups:       stats.NewCounter("cache.lookups"),
			Hits:          stats.NewCounter("cache.hits"),
			Evictions:     stats.NewCounter("cache.evictions"),
			FlushedBlocks: stats.NewCounter("cache.flushed_blocks"),
			FlushJobs:     stats.NewCounter("cache.flush_jobs"),
			SavedWrites:   stats.NewCounter("cache.saved_writes"),
			PressureWaits: stats.NewCounter("cache.pressure_waits"),
			NVRAMWaits:    stats.NewCounter("cache.nvram_waits"),
			DirtyHW:       stats.NewCounter("cache.dirty_highwater"),
		},
	}
	c.filled = k.NewCond("cache.filled")
	c.cleaned = k.NewCond("cache.cleaned")
	if !cfg.Simulated {
		c.arena = make([]byte, cfg.Blocks*core.BlockSize)
	}
	for i := 0; i < cfg.Blocks; i++ {
		b := &Block{}
		if c.arena != nil {
			b.Data = c.arena[i*core.BlockSize : (i+1)*core.BlockSize]
		}
		c.free.pushTail(b)
	}
	return c
}

// Start spawns the flusher task and, when the policy asks for one,
// the update daemon.
func (c *Cache) Start() {
	c.k.Go("cache.flusher", c.flusherLoop)
	if c.cfg.Flush.ScanInterval > 0 {
		c.k.Go("cache.updated", c.updateDaemon)
	}
}

// CacheStats returns the statistics plug-in.
func (c *Cache) CacheStats() *Stats { return c.st }

// Policy returns the flush configuration (for reports).
func (c *Cache) Policy() FlushConfig { return c.cfg.Flush }

// DirtyCount returns the number of dirty blocks.
func (c *Cache) DirtyCount() int { return c.dirtyCount }

// GetBlock returns the pinned block for key. hit reports whether the
// block already held valid contents; on a miss the caller must fill
// the block (read it from the layout, or zero it for a fresh block)
// and then call Filled — or FillFailed to abandon it. Concurrent
// requests for a missing block wait for the first filler.
func (c *Cache) GetBlock(t sched.Task, key core.BlockKey) (b *Block, hit bool) {
	c.mu.Lock(t)
	defer c.mu.Unlock(t)
	c.st.Lookups.Inc()
	for {
		b = c.index[key]
		if b == nil {
			nb := c.allocLocked(t)
			nb.Key = key
			nb.Busy = true
			nb.Valid = false
			nb.Dirty = false
			nb.NoCache = false
			nb.Size = 0
			nb.Freq = 1
			nb.History = append(nb.History[:0], c.k.Now())
			nb.LastUsed = c.k.Now()
			nb.Pins = 1
			c.index[key] = nb
			return nb, false
		}
		if b.Busy {
			c.filled.Wait(t, c.mu)
			continue // may have failed and vanished; recheck
		}
		c.pinLocked(b)
		b.Freq++
		b.LastUsed = c.k.Now()
		b.History = append(b.History, c.k.Now())
		b.touched = true
		c.st.Hits.Inc()
		return b, true
	}
}

// pinLocked pins b, withdrawing it from the replacement candidates.
func (c *Cache) pinLocked(b *Block) {
	if b.Pins == 0 && b.Valid && !b.Dirty && !b.Flushing && !b.Busy {
		c.replace.Remove(b)
	}
	b.Pins++
}

// Peek reports whether key is cached and valid, without pinning.
func (c *Cache) Peek(t sched.Task, key core.BlockKey) bool {
	c.mu.Lock(t)
	defer c.mu.Unlock(t)
	b := c.index[key]
	return b != nil && b.Valid && !b.Busy
}

// Filled marks a miss block as valid with size valid bytes. The
// block stays pinned; Release it when done.
func (c *Cache) Filled(t sched.Task, b *Block, size int) {
	c.mu.Lock(t)
	defer c.mu.Unlock(t)
	if !b.Busy {
		panic("cache: Filled on non-busy block " + b.Key.String())
	}
	b.Busy = false
	b.Valid = true
	b.Size = size
	c.filled.Broadcast()
}

// FillFailed abandons a miss block: it returns to the free list and
// waiters retry.
func (c *Cache) FillFailed(t sched.Task, b *Block) {
	c.mu.Lock(t)
	defer c.mu.Unlock(t)
	if !b.Busy {
		panic("cache: FillFailed on non-busy block")
	}
	delete(c.index, b.Key)
	b.Busy = false
	b.Valid = false
	b.Pins = 0
	c.free.pushTail(b)
	c.filled.Broadcast()
}

// Release unpins b; fully released clean blocks become replacement
// candidates (or go straight to the free list for NoCache blocks).
func (c *Cache) Release(t sched.Task, b *Block) {
	c.mu.Lock(t)
	defer c.mu.Unlock(t)
	if b.Pins <= 0 {
		panic("cache: Release of unpinned block " + b.Key.String())
	}
	b.Pins--
	if b.Pins > 0 {
		return
	}
	if b.Dirty || b.Flushing || !b.Valid {
		return
	}
	if b.NoCache {
		delete(c.index, b.Key)
		b.Valid = false
		c.free.pushTail(b)
		c.filled.Broadcast()
		return
	}
	c.replace.Add(b)
	if b.touched {
		// A hit happened while the block was pinned; let the
		// policy see it now that the block is a candidate again
		// (this is what promotes SLRU blocks to protected).
		c.replace.Touched(b)
		b.touched = false
	}
}

// MarkDirty moves a pinned block to the dirty set, honoring the
// policy's dirty-block bound: when the NVRAM buffer is full the
// caller waits here until the flusher drains it — the paper's
// "writes are waiting for the NVRAM to drain" bottleneck.
func (c *Cache) MarkDirty(t sched.Task, b *Block) {
	c.mu.Lock(t)
	defer c.mu.Unlock(t)
	if b.Pins <= 0 {
		panic("cache: MarkDirty on unpinned block")
	}
	for b.Flushing {
		// Data must stay stable while the flusher writes it.
		c.cleaned.Wait(t, c.mu)
	}
	if b.Dirty {
		return // overwrite in place: this is the write-saving win
	}
	limit := c.cfg.Flush.MaxDirtyBlocks
	for limit > 0 && c.dirtyCount >= limit {
		c.st.NVRAMWaits.Inc()
		c.flushOldestLocked()
		c.cleaned.Wait(t, c.mu)
	}
	b.Dirty = true
	b.DirtySince = c.k.Now()
	c.dirty.pushTail(b)
	fk := FileKey{b.Key.Vol, b.Key.File}
	m := c.dirtyByFile[fk]
	if m == nil {
		m = make(map[core.BlockNo]*Block)
		c.dirtyByFile[fk] = m
	}
	m[b.Key.Blk] = b
	c.dirtyCount++
	if int64(c.dirtyCount) > c.st.DirtyHW.Value() {
		c.st.DirtyHW.Add(int64(c.dirtyCount) - c.st.DirtyHW.Value())
	}
}

// allocLocked produces a free frame: from the free list, by evicting
// a replacement victim, or — under pressure — by triggering a flush
// of the oldest dirty block and waiting for the flusher.
func (c *Cache) allocLocked(t sched.Task) *Block {
	for {
		if b := c.free.popHead(); b != nil {
			return b
		}
		if v := c.replace.Victim(); v != nil {
			delete(c.index, v.Key)
			v.Valid = false
			c.st.Evictions.Inc()
			return v
		}
		// No clean blocks: initiate a flush through the oldest
		// dirty block, as the base cache component does.
		c.st.PressureWaits.Inc()
		if c.dirtyCount == 0 && c.flushing == 0 {
			panic("cache: exhausted — every block pinned or busy; cache too small for the working set")
		}
		c.flushOldestLocked()
		c.cleaned.Wait(t, c.mu)
	}
}

// flushOldestLocked enqueues the oldest dirty, not-yet-flushing
// block (whole file or single block per policy).
func (c *Cache) flushOldestLocked() {
	for b := c.dirty.head; b != nil; b = b.next {
		if !b.Flushing {
			c.enqueueFlushLocked(b)
			return
		}
	}
}

// enqueueFlushLocked builds a flush job from b per the granularity
// policy and hands it to the flusher. Whole-file jobs are sorted by
// block number so log-structured layouts write them contiguously —
// and so simulation runs stay deterministic despite map iteration.
func (c *Cache) enqueueFlushLocked(b *Block) {
	var job []*Block
	if c.cfg.Flush.WholeFile {
		for _, fb := range c.dirtyByFile[FileKey{b.Key.Vol, b.Key.File}] {
			if !fb.Flushing {
				fb.Flushing = true
				c.flushing++
				job = append(job, fb)
			}
		}
		sort.Slice(job, func(i, j int) bool { return job[i].Key.Blk < job[j].Key.Blk })
	} else {
		b.Flushing = true
		c.flushing++
		job = []*Block{b}
	}
	if len(job) == 0 {
		return
	}
	c.flushQ = append(c.flushQ, job)
	c.st.FlushJobs.Inc()
	c.flushWork.Signal()
}

// flusherLoop is the asynchronous flusher task.
func (c *Cache) flusherLoop(t sched.Task) {
	for {
		c.flushWork.Wait(t)
		c.mu.Lock(t)
		if len(c.flushQ) == 0 {
			c.mu.Unlock(t)
			continue
		}
		job := c.flushQ[0]
		c.flushQ = c.flushQ[1:]
		c.mu.Unlock(t)

		err := c.store.FlushBlocks(t, job)

		c.mu.Lock(t)
		for _, b := range job {
			b.Flushing = false
			c.flushing--
			if err != nil {
				continue // stays dirty; retried on next trigger
			}
			b.Dirty = false
			c.dirty.remove(b)
			c.removeDirtyIndexLocked(b)
			c.dirtyCount--
			c.st.FlushedBlocks.Inc()
			if b.Pins == 0 && b.Valid {
				if b.NoCache {
					delete(c.index, b.Key)
					b.Valid = false
					c.free.pushTail(b)
				} else {
					c.replace.Add(b)
				}
			}
		}
		c.cleaned.Broadcast()
		c.mu.Unlock(t)
	}
}

func (c *Cache) removeDirtyIndexLocked(b *Block) {
	fk := FileKey{b.Key.Vol, b.Key.File}
	if m := c.dirtyByFile[fk]; m != nil {
		delete(m, b.Key.Blk)
		if len(m) == 0 {
			delete(c.dirtyByFile, fk)
		}
	}
}

// updateDaemon is the SVR4-style scanner: every ScanInterval it
// flushes files whose oldest dirty block has aged past MaxAge.
func (c *Cache) updateDaemon(t sched.Task) {
	for {
		t.Sleep(c.cfg.Flush.ScanInterval)
		c.mu.Lock(t)
		now := c.k.Now()
		for b := c.dirty.head; b != nil; b = b.next {
			if now.Sub(b.DirtySince) < c.cfg.Flush.MaxAge {
				break // list is ordered by DirtySince
			}
			if !b.Flushing {
				c.enqueueFlushLocked(b)
			}
		}
		c.mu.Unlock(t)
	}
}

// FlushFile synchronously writes every dirty block of (vol, file).
func (c *Cache) FlushFile(t sched.Task, vol core.VolumeID, file core.FileID) {
	fk := FileKey{vol, file}
	c.mu.Lock(t)
	for {
		m := c.dirtyByFile[fk]
		if len(m) == 0 && !c.fileFlushingLocked(fk) {
			c.mu.Unlock(t)
			return
		}
		// Enqueue the lowest not-yet-flushing block (deterministic
		// despite map iteration); whole-file policies grab the
		// rest of the file with it.
		var pick *Block
		for _, b := range m {
			if !b.Flushing && (pick == nil || b.Key.Blk < pick.Key.Blk) {
				pick = b
			}
		}
		if pick != nil {
			c.enqueueFlushLocked(pick)
		}
		c.cleaned.Wait(t, c.mu)
	}
}

func (c *Cache) fileFlushingLocked(fk FileKey) bool {
	for b := c.dirty.head; b != nil; b = b.next {
		if b.Flushing && b.Key.Vol == fk.Vol && b.Key.File == fk.File {
			return true
		}
	}
	return false
}

// FlushAll synchronously writes every dirty block (shutdown,
// checkpoint).
func (c *Cache) FlushAll(t sched.Task) {
	c.mu.Lock(t)
	for c.dirtyCount > 0 || c.flushing > 0 {
		c.flushOldestLocked()
		c.cleaned.Wait(t, c.mu)
	}
	c.mu.Unlock(t)
}

// DiscardFile drops every cached block of (vol, file) numbered from
// fromBlk up. Dirty blocks are dropped without being written — the
// write-saving effect of truncates and deletes — and counted as
// saved writes. The caller must hold the file quiescent (no other
// task pinning its blocks); blocks mid-flush are waited for. It
// returns the number of dirty blocks dropped.
func (c *Cache) DiscardFile(t sched.Task, vol core.VolumeID, file core.FileID, fromBlk core.BlockNo) int {
	c.mu.Lock(t)
	defer c.mu.Unlock(t)
	saved := 0
	for {
		var victims []*Block
		waiting := false
		for key, b := range c.index {
			if key.Vol != vol || key.File != file || key.Blk < fromBlk {
				continue
			}
			if b.Flushing || b.Busy || b.Pins > 0 {
				waiting = true
				continue
			}
			victims = append(victims, b)
		}
		// Deterministic processing order despite map iteration.
		sort.Slice(victims, func(i, j int) bool { return victims[i].Key.Blk < victims[j].Key.Blk })
		for _, b := range victims {
			if b.Dirty {
				b.Dirty = false
				c.dirty.remove(b)
				c.removeDirtyIndexLocked(b)
				c.dirtyCount--
				saved++
				c.st.SavedWrites.Inc()
			} else {
				c.replace.Remove(b)
			}
			delete(c.index, b.Key)
			b.Valid = false
			c.free.pushTail(b)
		}
		if !waiting {
			break
		}
		c.cleaned.Wait(t, c.mu)
	}
	c.cleaned.Broadcast()
	return saved
}

// Stats registers the cache statistics plug-in.
func (c *Cache) Stats(set *stats.Set) { c.st.Register(set) }

func (c *Cache) String() string {
	return fmt.Sprintf("cache: %d blocks, replace=%s, flush=%s",
		c.cfg.Blocks, c.replace.Name(), c.cfg.Flush.Name)
}
