package cache

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/stats"
)

// BackingStore writes dirty blocks to stable storage. The storage
// layout (or the volume glue above it) implements this; the flusher
// task calls it with the cache lock released. A whole-file flush
// passes every dirty block of the file in one call so a
// log-structured layout can write them contiguously.
type BackingStore interface {
	FlushBlocks(t sched.Task, blocks []*Block) error
}

// FlushConfig selects the flush policy, the experiment variable of
// the paper: when dirty data leaves memory, and at what granularity.
type FlushConfig struct {
	Name string
	// ScanInterval > 0 runs an update daemon that wakes at this
	// period and flushes files whose oldest dirty block is older
	// than MaxAge (the Unix SVR4 30-second-update policy).
	ScanInterval time.Duration
	MaxAge       time.Duration
	// WholeFile selects whole-file flushing: flushing a block takes
	// every dirty block of its file along.
	WholeFile bool
	// MaxDirtyBlocks bounds how many blocks may be dirty at once; 0
	// is unlimited. The NVRAM experiments set it to the NVRAM size,
	// modeling "dirty data may only reside in NVRAM".
	MaxDirtyBlocks int
	// Persistent marks policies whose dirty data survives a power
	// cut: the UPS protects the whole memory, the NVRAM policies keep
	// every dirty block inside the NVRAM (MaxDirtyBlocks enforces the
	// residency). Cache.Crash returns those blocks for replay at
	// remount; with Persistent false they are lost with the power.
	Persistent bool
}

// WriteDelay is the baseline policy: dirty data is written after 30
// seconds by an update daemon that scans every few seconds, flushing
// whole files, as SVR4 does.
func WriteDelay() FlushConfig {
	return FlushConfig{Name: "writedelay", ScanInterval: 5 * time.Second,
		MaxAge: 30 * time.Second, WholeFile: true}
}

// UPS is the write-saving policy: with a UPS protecting the whole
// memory, dirty data stays in the cache until block allocation runs
// out of clean blocks; then the oldest dirty block is flushed (the
// paper's "naive" flush).
func UPS() FlushConfig {
	return FlushConfig{Name: "ups", Persistent: true}
}

// NVRAMWhole allows nvblocks dirty blocks (the NVRAM buffer) and
// flushes the whole file of the oldest dirty block when full.
func NVRAMWhole(nvblocks int) FlushConfig {
	return FlushConfig{Name: "nvram-whole", MaxDirtyBlocks: nvblocks, WholeFile: true,
		Persistent: true}
}

// NVRAMPartial allows nvblocks dirty blocks and flushes only the
// oldest dirty block when full.
func NVRAMPartial(nvblocks int) FlushConfig {
	return FlushConfig{Name: "nvram-partial", MaxDirtyBlocks: nvblocks, Persistent: true}
}

// Config sizes and configures a cache.
type Config struct {
	// Blocks is the cache capacity in blocks.
	Blocks int
	// Replace names the replacement policy (see NewReplacePolicy).
	Replace string
	// Flush is the flush policy.
	Flush FlushConfig
	// Simulated caches carry no data arena.
	Simulated bool
	// Shards lock-stripes the cache: frames, index, replacement
	// state and flusher are split into Shards independent units
	// keyed by block number, so concurrent clients on the real
	// kernel stop convoying on one mutex. 0 or 1 keeps the single
	// classic shard — the byte-identical simulator configuration.
	// Whole-file flush granularity becomes per-shard at widths
	// above 1, and the NVRAM dirty bound splits into whole
	// per-shard shares (the shard count clamps to MaxDirtyBlocks so
	// the global bound stays exact).
	Shards int
	// ShardChunk groups that many consecutive block numbers onto the
	// same shard (0 or 1 = the classic per-block striping). Clustered
	// instantiations set it to the layout's run-size cap so a file's
	// contiguous dirty run lives in one shard and reaches the layout
	// as one flush job — per-block striping would shred every run
	// across the shards and no multi-block write could ever form.
	ShardChunk int
	// IntentSlots, when positive, attaches a metadata intent log of
	// that many ring slots to the cache's persistence domain (see
	// intent.go). Zero leaves namespace operations unlogged — the
	// pre-intent-log behavior.
	IntentSlots int
}

// Stats is the cache statistics plug-in.
type Stats struct {
	Lookups        *stats.Counter
	Hits           *stats.Counter
	Evictions      *stats.Counter
	FlushedBlocks  *stats.Counter
	FlushJobs      *stats.Counter
	SavedWrites    *stats.Counter // dirty blocks discarded before any flush
	PressureWaits  *stats.Counter // allocations that had to wait for the flusher
	NVRAMWaits     *stats.Counter // writes that waited for NVRAM space
	DirtyHW        *stats.Counter // high-water mark of dirty blocks, cache-wide
	ReadaheadFills *stats.Counter // frames claimed by TryStartFill
}

// HitRate returns hits/lookups.
func (s *Stats) HitRate() float64 {
	if s.Lookups.Value() == 0 {
		return 0
	}
	return float64(s.Hits.Value()) / float64(s.Lookups.Value())
}

// Register adds the sources to set.
func (s *Stats) Register(set *stats.Set) {
	set.Add(s.Lookups)
	set.Add(s.Hits)
	set.Add(s.Evictions)
	set.Add(s.FlushedBlocks)
	set.Add(s.FlushJobs)
	set.Add(s.SavedWrites)
	set.Add(s.PressureWaits)
	set.Add(s.NVRAMWaits)
	set.Add(s.DirtyHW)
	set.Add(s.ReadaheadFills)
}

// Cache is the file-system block cache: an array of lock-striped
// shards, each a self-contained classic cache (index, free list,
// dirty list, replacement policy, flusher task) over its own share
// of the frames. A block's shard is its block number modulo the
// shard count, so a streaming file spreads across every shard. With
// one shard the behavior is exactly the paper's single-lock cache.
type Cache struct {
	k       sched.Kernel
	cfg     Config
	store   BackingStore
	shards  []*shard
	arena   []byte
	st      *Stats
	intents *IntentLog // nil unless Config.IntentSlots > 0

	// dirtyMu orders the cross-shard dirty-block total (and its
	// high-water stat): shard mutexes cover only their own counts.
	dirtyMu    sync.Mutex
	dirtyTotal int

	// off marks a power-cut cache: the flush machinery stops issuing
	// I/O (it would only fail against the cut device stack) and
	// waiters park instead of re-triggering flushes. Set by PowerOff;
	// never set in normal operation.
	off atomic.Bool
}

// PowerOff freezes the cache at a simulated power cut: no further
// flush jobs are issued and blocked writers park quietly. Call it
// when the fault plan's cut trips (or from the crash path) — the
// dirty state stays exactly as the cut left it for Crash to capture.
func (c *Cache) PowerOff() { c.off.Store(true) }

// Intents returns the metadata intent log, or nil when the cache was
// built without one (Config.IntentSlots == 0).
func (c *Cache) Intents() *IntentLog { return c.intents }

// shard is one lock-striped unit of the cache.
type shard struct {
	c  *Cache
	mu sched.Mutex

	filled  sched.Cond // Busy blocks became Valid (or failed)
	cleaned sched.Cond // flusher finished some blocks

	index       map[core.BlockKey]*Block
	free        blockList
	dirty       blockList // clean→dirty transition order: oldest first
	dirtyByFile map[FileKey]map[core.BlockNo]*Block
	replace     ReplacePolicy
	dirtyCount  int
	flushing    int
	// dirtyGauge shadows dirtyCount for telemetry: the real count
	// lives under the kernel mutex, which a scrape (a plain HTTP
	// goroutine with no kernel task) can never take.
	dirtyGauge atomic.Int64
	maxDirty   int // this shard's share of Flush.MaxDirtyBlocks (0 = unlimited)

	flushQ    [][]*Block
	flushWork sched.Event

	scanName string // update-daemon task name
}

// New builds a cache on kernel k backed by store. Call Start to
// spawn the flushers (and update daemons, if the policy has one).
func New(k sched.Kernel, cfg Config, store BackingStore) *Cache {
	if cfg.Blocks <= 0 {
		panic("cache: Config.Blocks must be positive")
	}
	nsh := cfg.Shards
	if nsh <= 0 {
		nsh = 1
	}
	if nsh > cfg.Blocks {
		nsh = cfg.Blocks
	}
	if limit := cfg.Flush.MaxDirtyBlocks; limit > 0 && nsh > limit {
		// Fewer stripes beats overcommitting the modeled NVRAM:
		// with nsh <= limit every shard gets a whole share and the
		// global dirty bound stays exact.
		nsh = limit
	}
	cfg.Shards = nsh
	c := &Cache{
		k:     k,
		cfg:   cfg,
		store: store,
		st: &Stats{
			Lookups:        stats.NewCounter("cache.lookups"),
			Hits:           stats.NewCounter("cache.hits"),
			Evictions:      stats.NewCounter("cache.evictions"),
			FlushedBlocks:  stats.NewCounter("cache.flushed_blocks"),
			FlushJobs:      stats.NewCounter("cache.flush_jobs"),
			SavedWrites:    stats.NewCounter("cache.saved_writes"),
			PressureWaits:  stats.NewCounter("cache.pressure_waits"),
			NVRAMWaits:     stats.NewCounter("cache.nvram_waits"),
			DirtyHW:        stats.NewCounter("cache.dirty_highwater"),
			ReadaheadFills: stats.NewCounter("cache.readahead_fills"),
		},
	}
	if cfg.IntentSlots > 0 {
		c.intents = NewIntentLog(cfg.IntentSlots)
	}
	if !cfg.Simulated {
		c.arena = make([]byte, cfg.Blocks*core.BlockSize)
	}
	frame := 0
	for i := 0; i < nsh; i++ {
		rp, ok := NewReplacePolicy(cfg.Replace, k.Rand())
		if !ok {
			panic(fmt.Sprintf("cache: unknown replacement policy %q", cfg.Replace))
		}
		blocks := cfg.Blocks / nsh
		if i < cfg.Blocks%nsh {
			blocks++
		}
		if s, isSLRU := rp.(*SLRU); isSLRU {
			s.SetProtectedLimit(blocks * 2 / 3)
		}
		name := sched.ShardName("cache", i, nsh)
		sh := &shard{
			c:           c,
			mu:          k.NewMutex(name),
			index:       make(map[core.BlockKey]*Block),
			dirtyByFile: make(map[FileKey]map[core.BlockNo]*Block),
			replace:     rp,
			flushWork:   k.NewEvent(name + ".flushwork"),
			scanName:    name + ".updated",
		}
		sh.filled = k.NewCond(name + ".filled")
		sh.cleaned = k.NewCond(name + ".cleaned")
		if limit := cfg.Flush.MaxDirtyBlocks; limit > 0 {
			// nsh <= limit (clamped above), so every shard's share
			// is at least one and the shares sum to exactly limit.
			sh.maxDirty = limit / nsh
			if i < limit%nsh {
				sh.maxDirty++
			}
		}
		for j := 0; j < blocks; j++ {
			b := &Block{}
			if c.arena != nil {
				b.Data = c.arena[frame*core.BlockSize : (frame+1)*core.BlockSize]
			}
			frame++
			sh.free.pushTail(b)
		}
		c.shards = append(c.shards, sh)
	}
	return c
}

// Start spawns each shard's flusher task and, when the policy asks
// for one, its update daemon.
func (c *Cache) Start() {
	nsh := len(c.shards)
	for i, sh := range c.shards {
		sh := sh
		c.k.Go(sched.ShardName("cache", i, nsh)+".flusher", sh.flusherLoop)
		if c.cfg.Flush.ScanInterval > 0 {
			c.k.Go(sh.scanName, sh.updateDaemon)
		}
	}
}

// CacheStats returns the statistics plug-in.
func (c *Cache) CacheStats() *Stats { return c.st }

// Policy returns the flush configuration (for reports).
func (c *Cache) Policy() FlushConfig { return c.cfg.Flush }

// Shards returns the lock-stripe width.
func (c *Cache) Shards() int { return len(c.shards) }

// Capacity returns the cache size in blocks.
func (c *Cache) Capacity() int { return c.cfg.Blocks }

// MaxDirtyBlocks returns the policy's dirty bound (the modeled NVRAM
// size), 0 when unlimited.
func (c *Cache) MaxDirtyBlocks() int { return c.cfg.Flush.MaxDirtyBlocks }

// Off reports whether the cache has been powered off.
func (c *Cache) Off() bool { return c.off.Load() }

// ShardDirty returns shard i's dirty-block count from the telemetry
// shadow gauge — safe from plain goroutines, eventually consistent
// with the kernel-mutex-guarded truth.
func (c *Cache) ShardDirty(i int) int64 { return c.shards[i].dirtyGauge.Load() }

// DirtyCount returns the number of dirty blocks across all shards.
func (c *Cache) DirtyCount() int {
	c.dirtyMu.Lock()
	defer c.dirtyMu.Unlock()
	return c.dirtyTotal
}

// addDirty tracks the global dirty-block total and its high-water
// stat across shards; the per-shard counts drive the NVRAM bound,
// this one keeps DirtyHW meaning what it always has (the most dirty
// blocks ever resident at once, cache-wide).
func (c *Cache) addDirty(d int) {
	c.dirtyMu.Lock()
	c.dirtyTotal += d
	if hw := int64(c.dirtyTotal); hw > c.st.DirtyHW.Value() {
		c.st.DirtyHW.Add(hw - c.st.DirtyHW.Value())
	}
	c.dirtyMu.Unlock()
}

// shardOf routes a key to its lock stripe. The classic map (chunk
// 0/1) stripes per block number. With a chunk it routes by
// chunk index mixed with the file id — a file's contiguous run
// stays on one shard, but different files' runs decorrelate
// (chunk-only routing would pile every file's first chunk onto
// shard 0 and convoy there).
func (c *Cache) shardOf(key core.BlockKey) *shard {
	b := uint64(key.Blk)
	if c.cfg.ShardChunk > 1 {
		x := b/uint64(c.cfg.ShardChunk) + uint64(key.File)*0x9E3779B97F4A7C15 + uint64(key.Vol)<<32
		x ^= x >> 30
		x *= 0xBF58476D1CE4E5B9
		x ^= x >> 27
		b = x
	}
	return c.shards[b%uint64(len(c.shards))]
}

// GetBlock returns the pinned block for key. hit reports whether the
// block already held valid contents; on a miss the caller must fill
// the block (read it from the layout, or zero it for a fresh block)
// and then call Filled — or FillFailed to abandon it. Concurrent
// requests for a missing block wait for the first filler.
func (c *Cache) GetBlock(t sched.Task, key core.BlockKey) (b *Block, hit bool) {
	sh := c.shardOf(key)
	sh.mu.Lock(t)
	defer sh.mu.Unlock(t)
	c.st.Lookups.Inc()
	for {
		b = sh.index[key]
		if b == nil {
			nb := sh.allocLocked(t)
			nb.Key = key
			nb.Busy = true
			nb.Valid = false
			nb.Dirty = false
			nb.NoCache = false
			nb.Size = 0
			nb.Freq = 1
			nb.History = append(nb.History[:0], c.k.Now())
			nb.LastUsed = c.k.Now()
			nb.Pins = 1
			sh.index[key] = nb
			return nb, false
		}
		if b.Busy {
			sh.filled.Wait(t, sh.mu)
			continue // may have failed and vanished; recheck
		}
		sh.pinLocked(b)
		b.Freq++
		b.LastUsed = c.k.Now()
		b.History = append(b.History, c.k.Now())
		b.touched = true
		c.st.Hits.Inc()
		return b, true
	}
}

// TryStartFill is the readahead entry point: when key is absent and
// a frame can be had without flushing dirty data or blocking, it
// claims a Busy, pinned frame the caller must complete with
// FinishFill. It refuses (nil, false) when the block is already
// present or being filled, or when only dirty, busy or pinned
// frames remain — readahead never pushes dirty blocks out of memory
// (the NVRAM residency guarantee) and never stalls behind the
// flusher the way a demand miss may.
func (c *Cache) TryStartFill(t sched.Task, key core.BlockKey) (*Block, bool) {
	sh := c.shardOf(key)
	sh.mu.Lock(t)
	defer sh.mu.Unlock(t)
	if sh.index[key] != nil {
		return nil, false
	}
	b := sh.free.popHead()
	if b == nil {
		if v := sh.replace.Victim(); v != nil {
			delete(sh.index, v.Key)
			v.Valid = false
			c.st.Evictions.Inc()
			b = v
		}
	}
	if b == nil {
		return nil, false // only dirty/pinned/busy frames left
	}
	b.Key = key
	b.Busy = true
	b.Valid = false
	b.Dirty = false
	b.NoCache = false
	b.Size = 0
	b.Freq = 1
	b.History = append(b.History[:0], c.k.Now())
	b.LastUsed = c.k.Now()
	b.Pins = 1
	sh.index[key] = b
	c.st.ReadaheadFills.Inc()
	return b, true
}

// FinishFill completes a TryStartFill: on success the block becomes
// a valid, unpinned cache resident; on error the frame returns to
// the free list and demand waiters retry. Both outcomes wake filled
// and cleaned waiters, so a truncate or delete racing a readahead
// re-scans instead of waiting forever.
func (c *Cache) FinishFill(t sched.Task, b *Block, size int, err error) {
	sh := c.shardOf(b.Key)
	sh.mu.Lock(t)
	defer sh.mu.Unlock(t)
	if !b.Busy {
		panic("cache: FinishFill on non-busy block " + b.Key.String())
	}
	b.Busy = false
	b.Pins--
	if err != nil {
		delete(sh.index, b.Key)
		b.Valid = false
		b.Pins = 0
		sh.free.pushTail(b)
	} else {
		b.Valid = true
		b.Size = size
		if b.Pins == 0 {
			sh.replace.Add(b)
		}
	}
	sh.filled.Broadcast()
	sh.cleaned.Broadcast()
}

// pinLocked pins b, withdrawing it from the replacement candidates.
func (sh *shard) pinLocked(b *Block) {
	if b.Pins == 0 && b.Valid && !b.Dirty && !b.Flushing && !b.Busy {
		sh.replace.Remove(b)
	}
	b.Pins++
}

// Peek reports whether key is cached and valid, without pinning.
func (c *Cache) Peek(t sched.Task, key core.BlockKey) bool {
	sh := c.shardOf(key)
	sh.mu.Lock(t)
	defer sh.mu.Unlock(t)
	b := sh.index[key]
	return b != nil && b.Valid && !b.Busy
}

// Filled marks a miss block as valid with size valid bytes. The
// block stays pinned; Release it when done.
func (c *Cache) Filled(t sched.Task, b *Block, size int) {
	sh := c.shardOf(b.Key)
	sh.mu.Lock(t)
	defer sh.mu.Unlock(t)
	if !b.Busy {
		panic("cache: Filled on non-busy block " + b.Key.String())
	}
	b.Busy = false
	b.Valid = true
	b.Size = size
	sh.filled.Broadcast()
}

// FillFailed abandons a miss block: it returns to the free list and
// waiters retry.
func (c *Cache) FillFailed(t sched.Task, b *Block) {
	sh := c.shardOf(b.Key)
	sh.mu.Lock(t)
	defer sh.mu.Unlock(t)
	if !b.Busy {
		panic("cache: FillFailed on non-busy block")
	}
	delete(sh.index, b.Key)
	b.Busy = false
	b.Valid = false
	b.Pins = 0
	sh.free.pushTail(b)
	sh.filled.Broadcast()
}

// Release unpins b; fully released clean blocks become replacement
// candidates (or go straight to the free list for NoCache blocks).
func (c *Cache) Release(t sched.Task, b *Block) {
	sh := c.shardOf(b.Key)
	sh.mu.Lock(t)
	defer sh.mu.Unlock(t)
	if b.Pins <= 0 {
		panic("cache: Release of unpinned block " + b.Key.String())
	}
	b.Pins--
	if b.Pins > 0 {
		return
	}
	if b.Dirty || b.Flushing || !b.Valid {
		return
	}
	if b.NoCache {
		delete(sh.index, b.Key)
		b.Valid = false
		sh.free.pushTail(b)
		sh.filled.Broadcast()
		return
	}
	sh.replace.Add(b)
	if b.touched {
		// A hit happened while the block was pinned; let the
		// policy see it now that the block is a candidate again
		// (this is what promotes SLRU blocks to protected).
		sh.replace.Touched(b)
		b.touched = false
	}
}

// BeginWrite prepares a pinned block for an in-place mutation of its
// Data: it waits out any in-flight flush of the block and marks it
// write-busy, so the flusher never copies a half-updated frame. End
// the mutation with MarkDirty. Callers that move no real bytes (the
// simulator) skip it — their blocks have nothing to tear.
func (c *Cache) BeginWrite(t sched.Task, b *Block) {
	sh := c.shardOf(b.Key)
	sh.mu.Lock(t)
	defer sh.mu.Unlock(t)
	if b.Pins <= 0 {
		panic("cache: BeginWrite on unpinned block " + b.Key.String())
	}
	for b.Flushing || b.Borrows > 0 {
		sh.cleaned.Wait(t, sh.mu)
	}
	b.Writing++
}

// Borrow loans a pinned block's Data to an in-flight zero-copy I/O —
// an NFS read reply that writev's the frame straight to the socket.
// The loan waits out any in-place mutation (BeginWrite..MarkDirty) so
// it never captures a half-updated frame, then keeps writers out of
// BeginWrite until Unborrow. The caller must already hold a pin and
// keep holding it for the life of the loan; a stalled consumer (a
// slow client socket) therefore delays writers to this block, which
// is the price of lending the frame instead of copying it.
func (c *Cache) Borrow(t sched.Task, b *Block) {
	sh := c.shardOf(b.Key)
	sh.mu.Lock(t)
	defer sh.mu.Unlock(t)
	if b.Pins <= 0 {
		panic("cache: Borrow of unpinned block " + b.Key.String())
	}
	for b.Writing > 0 {
		sh.cleaned.Wait(t, sh.mu)
	}
	b.Borrows++
}

// Unborrow returns a Borrow loan; writers parked in BeginWrite wake.
func (c *Cache) Unborrow(t sched.Task, b *Block) {
	sh := c.shardOf(b.Key)
	sh.mu.Lock(t)
	defer sh.mu.Unlock(t)
	if b.Borrows <= 0 {
		panic("cache: Unborrow without Borrow " + b.Key.String())
	}
	b.Borrows--
	if b.Borrows == 0 {
		sh.cleaned.Broadcast()
	}
}

// MarkDirty moves a pinned block to the dirty set, honoring the
// policy's dirty-block bound: when the NVRAM buffer is full the
// caller waits here until the flusher drains it — the paper's
// "writes are waiting for the NVRAM to drain" bottleneck. It also
// ends a BeginWrite reservation: the new contents are published to
// the flusher.
func (c *Cache) MarkDirty(t sched.Task, b *Block) {
	sh := c.shardOf(b.Key)
	sh.mu.Lock(t)
	defer sh.mu.Unlock(t)
	if b.Pins <= 0 {
		panic("cache: MarkDirty on unpinned block")
	}
	if b.Writing > 0 {
		b.Writing--
		if b.Writing == 0 {
			// Flush pickers and the crash snapshot wait on cleaned for
			// write-busy blocks to settle. Broadcast NOW, not on
			// return: the dirty-bound loop below can park this task
			// indefinitely (forever, after a power cut), and the
			// crash snapshot must not wait behind it.
			sh.cleaned.Broadcast()
		}
	}
	for b.Flushing {
		// Data must stay stable while the flusher writes it.
		sh.cleaned.Wait(t, sh.mu)
	}
	if b.Dirty {
		return // overwrite in place: this is the write-saving win
	}
	for sh.maxDirty > 0 && sh.dirtyCount >= sh.maxDirty {
		c.st.NVRAMWaits.Inc()
		if !c.off.Load() {
			sh.flushOldestLocked()
		}
		sh.cleaned.Wait(t, sh.mu)
	}
	b.Dirty = true
	b.DirtySince = c.k.Now()
	sh.dirty.pushTail(b)
	fk := FileKey{b.Key.Vol, b.Key.File}
	m := sh.dirtyByFile[fk]
	if m == nil {
		m = make(map[core.BlockNo]*Block)
		sh.dirtyByFile[fk] = m
	}
	m[b.Key.Blk] = b
	sh.dirtyCount++
	sh.dirtyGauge.Add(1)
	c.addDirty(1)
}

// allocLocked produces a free frame: from the free list, by evicting
// a replacement victim, or — under pressure — by triggering a flush
// of the oldest dirty block and waiting for the flusher.
func (sh *shard) allocLocked(t sched.Task) *Block {
	for {
		if b := sh.free.popHead(); b != nil {
			return b
		}
		if v := sh.replace.Victim(); v != nil {
			delete(sh.index, v.Key)
			v.Valid = false
			sh.c.st.Evictions.Inc()
			return v
		}
		// No clean blocks: initiate a flush through the oldest
		// dirty block, as the base cache component does.
		sh.c.st.PressureWaits.Inc()
		if sh.dirtyCount == 0 && sh.flushing == 0 {
			panic("cache: shard exhausted — every block pinned or busy; cache too small (or too many shards) for the working set")
		}
		if !sh.c.off.Load() {
			sh.flushOldestLocked()
		}
		sh.cleaned.Wait(t, sh.mu)
	}
}

// flushOldestLocked enqueues the oldest dirty, not-yet-flushing
// block (whole file or single block per policy). Write-busy blocks
// are skipped — their contents are mid-update.
func (sh *shard) flushOldestLocked() {
	for b := sh.dirty.head; b != nil; b = b.next {
		if !b.Flushing && b.Writing == 0 {
			sh.enqueueFlushLocked(b)
			return
		}
	}
}

// enqueueFlushLocked builds a flush job from b per the granularity
// policy and hands it to the flusher. Whole-file jobs are sorted by
// block number so log-structured layouts write them contiguously —
// and so simulation runs stay deterministic despite map iteration.
// With multiple shards, "whole file" means the file's dirty blocks
// living in this shard; sibling stripes flush from their own shards.
func (sh *shard) enqueueFlushLocked(b *Block) {
	var job []*Block
	if sh.c.cfg.Flush.WholeFile {
		for _, fb := range sh.dirtyByFile[FileKey{b.Key.Vol, b.Key.File}] {
			if !fb.Flushing && fb.Writing == 0 {
				fb.Flushing = true
				sh.flushing++
				job = append(job, fb)
			}
		}
		sort.Slice(job, func(i, j int) bool { return job[i].Key.Blk < job[j].Key.Blk })
	} else {
		if b.Writing > 0 {
			return
		}
		b.Flushing = true
		sh.flushing++
		job = []*Block{b}
	}
	if len(job) == 0 {
		return
	}
	sh.flushQ = append(sh.flushQ, job)
	sh.c.st.FlushJobs.Inc()
	sh.flushWork.Signal()
}

// flusherLoop is a shard's asynchronous flusher task.
func (sh *shard) flusherLoop(t sched.Task) {
	for {
		sh.flushWork.Wait(t)
		sh.mu.Lock(t)
		if len(sh.flushQ) == 0 {
			sh.mu.Unlock(t)
			continue
		}
		job := sh.flushQ[0]
		sh.flushQ = sh.flushQ[1:]
		sh.mu.Unlock(t)

		err := sh.c.store.FlushBlocks(t, job)

		sh.mu.Lock(t)
		for _, b := range job {
			b.Flushing = false
			sh.flushing--
			if err != nil {
				continue // stays dirty; retried on next trigger
			}
			b.Dirty = false
			sh.dirty.remove(b)
			sh.removeDirtyIndexLocked(b)
			sh.dirtyCount--
			sh.dirtyGauge.Add(-1)
			sh.c.addDirty(-1)
			sh.c.st.FlushedBlocks.Inc()
			if b.Pins == 0 && b.Valid {
				if b.NoCache {
					delete(sh.index, b.Key)
					b.Valid = false
					sh.free.pushTail(b)
				} else {
					sh.replace.Add(b)
				}
			}
		}
		sh.cleaned.Broadcast()
		sh.mu.Unlock(t)
	}
}

func (sh *shard) removeDirtyIndexLocked(b *Block) {
	fk := FileKey{b.Key.Vol, b.Key.File}
	if m := sh.dirtyByFile[fk]; m != nil {
		delete(m, b.Key.Blk)
		if len(m) == 0 {
			delete(sh.dirtyByFile, fk)
		}
	}
}

// updateDaemon is the SVR4-style scanner: every ScanInterval it
// flushes files whose oldest dirty block has aged past MaxAge.
func (sh *shard) updateDaemon(t sched.Task) {
	for {
		t.Sleep(sh.c.cfg.Flush.ScanInterval)
		if sh.c.off.Load() {
			continue
		}
		sh.mu.Lock(t)
		now := sh.c.k.Now()
		for b := sh.dirty.head; b != nil; b = b.next {
			if now.Sub(b.DirtySince) < sh.c.cfg.Flush.MaxAge {
				break // list is ordered by DirtySince
			}
			if !b.Flushing && b.Writing == 0 {
				sh.enqueueFlushLocked(b)
			}
		}
		sh.mu.Unlock(t)
	}
}

// FlushFile synchronously writes every dirty block of (vol, file),
// shard by shard.
func (c *Cache) FlushFile(t sched.Task, vol core.VolumeID, file core.FileID) {
	if c.off.Load() {
		return
	}
	fk := FileKey{vol, file}
	for _, sh := range c.shards {
		sh.mu.Lock(t)
		for {
			m := sh.dirtyByFile[fk]
			if len(m) == 0 && !sh.fileFlushingLocked(fk) {
				break
			}
			// Enqueue the lowest not-yet-flushing block (deterministic
			// despite map iteration); whole-file policies grab the
			// rest of the file with it.
			var pick *Block
			for _, b := range m {
				if !b.Flushing && b.Writing == 0 && (pick == nil || b.Key.Blk < pick.Key.Blk) {
					pick = b
				}
			}
			if pick != nil {
				sh.enqueueFlushLocked(pick)
			}
			sh.cleaned.Wait(t, sh.mu)
		}
		sh.mu.Unlock(t)
	}
}

func (sh *shard) fileFlushingLocked(fk FileKey) bool {
	for b := sh.dirty.head; b != nil; b = b.next {
		if b.Flushing && b.Key.Vol == fk.Vol && b.Key.File == fk.File {
			return true
		}
	}
	return false
}

// FlushAll synchronously writes every dirty block (shutdown,
// checkpoint).
func (c *Cache) FlushAll(t sched.Task) {
	if c.off.Load() {
		return
	}
	for _, sh := range c.shards {
		sh.mu.Lock(t)
		for sh.dirtyCount > 0 || sh.flushing > 0 {
			sh.flushOldestLocked()
			sh.cleaned.Wait(t, sh.mu)
		}
		sh.mu.Unlock(t)
	}
}

// DiscardFile drops every cached block of (vol, file) numbered from
// fromBlk up. Dirty blocks are dropped without being written — the
// write-saving effect of truncates and deletes — and counted as
// saved writes. The caller must hold the file quiescent (no other
// task pinning its blocks); blocks mid-flush or mid-readahead are
// waited for. It returns the number of dirty blocks dropped.
func (c *Cache) DiscardFile(t sched.Task, vol core.VolumeID, file core.FileID, fromBlk core.BlockNo) int {
	saved := 0
	for _, sh := range c.shards {
		sh.mu.Lock(t)
		for {
			var victims []*Block
			waiting := false
			for key, b := range sh.index {
				if key.Vol != vol || key.File != file || key.Blk < fromBlk {
					continue
				}
				if b.Flushing || b.Busy || b.Pins > 0 {
					waiting = true
					continue
				}
				victims = append(victims, b)
			}
			// Deterministic processing order despite map iteration.
			sort.Slice(victims, func(i, j int) bool { return victims[i].Key.Blk < victims[j].Key.Blk })
			for _, b := range victims {
				if b.Dirty {
					b.Dirty = false
					sh.dirty.remove(b)
					sh.removeDirtyIndexLocked(b)
					sh.dirtyCount--
					sh.dirtyGauge.Add(-1)
					c.addDirty(-1)
					saved++
					c.st.SavedWrites.Inc()
				} else {
					sh.replace.Remove(b)
				}
				delete(sh.index, b.Key)
				b.Valid = false
				sh.free.pushTail(b)
			}
			if !waiting {
				break
			}
			sh.cleaned.Wait(t, sh.mu)
		}
		sh.cleaned.Broadcast()
		sh.mu.Unlock(t)
	}
	return saved
}

// Stats registers the cache statistics plug-in.
func (c *Cache) Stats(set *stats.Set) { c.st.Register(set) }

func (c *Cache) String() string {
	s := fmt.Sprintf("cache: %d blocks, replace=%s, flush=%s",
		c.cfg.Blocks, c.shards[0].replace.Name(), c.cfg.Flush.Name)
	if len(c.shards) > 1 {
		s += fmt.Sprintf(", shards=%d", len(c.shards))
	}
	return s
}
