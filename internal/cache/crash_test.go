package cache

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
)

// TestCrashVolatileLosesDirty checks that under write-delay every
// dirty block dies with the power and the loss window is the age of
// the oldest dirty block.
func TestCrashVolatileLosesDirty(t *testing.T) {
	k, c, _ := newTestCache(1, 64, FlushConfig{Name: "writedelay", ScanInterval: time.Hour,
		MaxAge: time.Hour, WholeFile: true})
	run(t, k, func(tk sched.Task) {
		fill(tk, c, 7, 3)
		tk.Sleep(10 * time.Second)
		fill(tk, c, 8, 2)
		rep := c.Crash(tk)
		if rep.Persistent {
			t.Error("write-delay reported persistent")
		}
		if len(rep.Survivors) != 0 {
			t.Errorf("write-delay crash kept %d survivors", len(rep.Survivors))
		}
		if rep.LostBlocks != 5 {
			t.Errorf("LostBlocks = %d, want 5", rep.LostBlocks)
		}
		if rep.LossWindow != 10*time.Second {
			t.Errorf("LossWindow = %v, want 10s (age of oldest dirty block)", rep.LossWindow)
		}
	})
}

// TestCrashPersistentKeepsDirty checks UPS and NVRAM crashes return
// every dirty block, in deterministic key order, with data copies.
func TestCrashPersistentKeepsDirty(t *testing.T) {
	for _, fc := range []FlushConfig{UPS(), NVRAMWhole(8), NVRAMPartial(8)} {
		k := sched.NewVirtual(1)
		st := &fakeStore{k: k}
		c := New(k, Config{Blocks: 32, Flush: fc}, st) // real cache: data arena
		c.Start()
		run(t, k, func(tk sched.Task) {
			for i := 0; i < 4; i++ {
				b, hit := c.GetBlock(tk, key(9, core.BlockNo(3-i)))
				if !hit {
					for j := range b.Data {
						b.Data[j] = byte(3 - i)
					}
					c.Filled(tk, b, core.BlockSize)
				}
				c.MarkDirty(tk, b)
				c.Release(tk, b)
			}
			rep := c.Crash(tk)
			if !rep.Persistent {
				t.Fatalf("%s: not persistent", fc.Name)
			}
			if rep.LostBlocks != 0 || rep.LossWindow != 0 {
				t.Errorf("%s: lost %d blocks, window %v", fc.Name, rep.LostBlocks, rep.LossWindow)
			}
			if len(rep.Survivors) != 4 {
				t.Fatalf("%s: %d survivors, want 4", fc.Name, len(rep.Survivors))
			}
			for i, s := range rep.Survivors {
				if s.Key.Blk != core.BlockNo(i) {
					t.Fatalf("%s: survivor %d is block %d, want sorted order", fc.Name, i, s.Key.Blk)
				}
				if s.Data[0] != byte(i) {
					t.Fatalf("%s: survivor %d carries wrong data", fc.Name, i)
				}
			}
		})
	}
}

// TestCrashSeesMidFlushBlocks checks a block whose flush I/O was in
// flight at the cut still counts as dirty: the write died with the
// power, so it must be in the surviving set.
func TestCrashSeesMidFlushBlocks(t *testing.T) {
	k := sched.NewVirtual(1)
	st := &fakeStore{k: k, delay: time.Second}
	c := New(k, Config{Blocks: 16, Flush: UPS(), Simulated: true}, st)
	c.Start()
	run(t, k, func(tk sched.Task) {
		fill(tk, c, 5, 2)
		// Kick a whole-file flush and crash while it is in flight.
		c.shards[0].mu.Lock(tk)
		c.shards[0].flushOldestLocked()
		c.shards[0].mu.Unlock(tk)
		tk.Sleep(10 * time.Millisecond) // flusher now sleeping in FlushBlocks
		rep := c.Crash(tk)
		if len(rep.Survivors) != 2 {
			t.Fatalf("crash during flush kept %d survivors, want 2", len(rep.Survivors))
		}
	})
}
