package cache

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
)

// TestShardChunkKeepsRunsTogether pins the clustered routing: with
// ShardChunk set, a file's contiguous dirty run lives in one shard
// and reaches the backing store as one whole-file flush job, where
// per-block striping would shred it into per-shard fragments.
func TestShardChunkKeepsRunsTogether(t *testing.T) {
	k := sched.NewVirtual(9)
	st := &fakeStore{k: k, delay: time.Millisecond}
	c := New(k, Config{
		Blocks: 64, Shards: 4, ShardChunk: 8, Simulated: true,
		Flush: FlushConfig{Name: "writedelay", ScanInterval: 5 * time.Millisecond,
			MaxAge: 10 * time.Millisecond, WholeFile: true},
	}, st)
	c.Start()
	run(t, k, func(tk sched.Task) {
		// Blocks 0..7 share chunk 0 → one shard; verify via the
		// flush job granularity.
		fill(tk, c, 3, 8)
		c.FlushFile(tk, 1, 3)
		if st.jobs != 1 {
			t.Fatalf("8-block run flushed as %d jobs, want 1 (one shard)", st.jobs)
		}
		if len(st.flushed) != 8 {
			t.Fatalf("flushed %d blocks, want 8", len(st.flushed))
		}
		for i, key := range st.flushed {
			if key.Blk != core.BlockNo(i) {
				t.Fatalf("job out of order at %d: %v", i, key)
			}
		}
	})
}

// TestShardChunkClassicEquivalence: chunk 0/1 must behave exactly
// like the pre-chunk cache (blocks stripe per block number).
func TestShardChunkClassicEquivalence(t *testing.T) {
	for _, chunk := range []int{0, 1} {
		k := sched.NewVirtual(10)
		st := &fakeStore{k: k, delay: time.Millisecond}
		c := New(k, Config{Blocks: 64, Shards: 4, ShardChunk: chunk, Simulated: true, Flush: UPS()}, st)
		c.Start()
		run(t, k, func(tk sched.Task) {
			for i := 0; i < 16; i++ {
				b, hit := c.GetBlock(tk, key(1, core.BlockNo(i)))
				if hit {
					t.Fatalf("chunk=%d: unexpected hit at %d", chunk, i)
				}
				c.Filled(tk, b, core.BlockSize)
				c.Release(tk, b)
			}
			// 16 consecutive blocks over 4 shards at per-block stripe:
			// 4 in each shard's index.
			for i, sh := range c.shards {
				if got := len(sh.index); got != 4 {
					t.Fatalf("chunk=%d: shard %d holds %d blocks, want 4", chunk, i, got)
				}
			}
		})
	}
}
