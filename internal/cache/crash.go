package cache

import (
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
)

// This file models what a power cut does to the cache — the heart of
// the paper's reliability argument. Under the write-delay policy the
// cache lives in volatile DRAM and every dirty block dies with the
// power; under the UPS and NVRAM policies the dirty data's residence
// is battery-backed, so the same blocks survive and can be replayed
// into the storage layout at remount.

// Survivor is one dirty block captured at a power cut.
type Survivor struct {
	Key core.BlockKey
	// Data is a copy of the block contents (nil in simulated caches,
	// which carry no data).
	Data []byte
	// Size is the count of valid bytes.
	Size int
	// DirtySince is when the block last went dirty.
	DirtySince sched.Time
}

// CrashReport is the cache's state at a simulated power cut.
type CrashReport struct {
	// Policy names the flush policy that was in effect.
	Policy string
	// Persistent reports whether the policy's dirty data survives.
	Persistent bool
	// Survivors holds every dirty block the persistence domain
	// preserved, in deterministic (vol, file, block) order. Empty
	// under a volatile policy.
	Survivors []Survivor
	// LostBlocks counts dirty blocks lost with the volatile memory
	// (0 under a persistent policy).
	LostBlocks int
	// LossWindow is the age of the oldest lost dirty block — how far
	// back acknowledged writes may be missing after recovery. The
	// write-delay policy bounds it by MaxAge + ScanInterval.
	LossWindow time.Duration
	// Intents holds the unretired metadata intents the persistence
	// domain preserved, in Seq order (nil without an intent log or
	// under a volatile policy — the ring lives in the same domain as
	// the dirty blocks and dies with them).
	Intents []Intent
	// LostIntents counts unretired intents lost with the volatile
	// memory: acknowledged namespace operations recovery cannot
	// restore.
	LostIntents int
	// IntentLossWindow is the age of the oldest lost intent.
	IntentLossWindow time.Duration
}

// Crash captures the power-cut state of the cache: every dirty block
// (including blocks mid-flush, whose in-flight I/O died with the
// power) is either returned for replay (persistent policies) or
// counted lost (volatile ones). The cache itself is left untouched —
// the crashed instance is abandoned, recovery happens on a remounted
// stack.
func (c *Cache) Crash(t sched.Task) *CrashReport {
	rep := &CrashReport{
		Policy:     c.cfg.Flush.Name,
		Persistent: c.cfg.Flush.Persistent,
	}
	now := c.k.Now()
	for _, sh := range c.shards {
		sh.mu.Lock(t)
		// Let in-flight in-place mutations settle: a half-copied frame
		// must not be captured as a survivor (writers hold no lock
		// across the copy, only the Writing reservation).
		for sh.anyWritingLocked() {
			sh.cleaned.Wait(t, sh.mu)
		}
		for b := sh.dirty.head; b != nil; b = b.next {
			if !b.Dirty {
				continue
			}
			if !rep.Persistent {
				rep.LostBlocks++
				if age := now.Sub(b.DirtySince); age > rep.LossWindow {
					rep.LossWindow = age
				}
				continue
			}
			s := Survivor{Key: b.Key, Size: b.Size, DirtySince: b.DirtySince}
			if b.Data != nil {
				s.Data = append([]byte(nil), b.Data...)
			}
			rep.Survivors = append(rep.Survivors, s)
		}
		sh.mu.Unlock(t)
	}
	if c.intents != nil {
		un := c.intents.Unretired()
		if rep.Persistent {
			rep.Intents = un
		} else {
			rep.LostIntents = len(un)
			for _, it := range un {
				if age := now.Sub(it.At); age > rep.IntentLossWindow {
					rep.IntentLossWindow = age
				}
			}
		}
	}
	sort.Slice(rep.Survivors, func(i, j int) bool {
		a, b := rep.Survivors[i].Key, rep.Survivors[j].Key
		if a.Vol != b.Vol {
			return a.Vol < b.Vol
		}
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Blk < b.Blk
	})
	return rep
}

// anyWritingLocked reports whether some block of the shard is under
// an in-place mutation.
func (sh *shard) anyWritingLocked() bool {
	for _, b := range sh.index {
		if b.Writing > 0 {
			return true
		}
	}
	return false
}
