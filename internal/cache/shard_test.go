package cache

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
)

// newShardedCache builds a simulated sharded cache on a fresh
// virtual kernel.
func newShardedCache(seed int64, blocks, shards int, fc FlushConfig) (*sched.VKernel, *Cache, *fakeStore) {
	k := sched.NewVirtual(seed)
	st := &fakeStore{k: k, delay: 5 * time.Millisecond}
	c := New(k, Config{Blocks: blocks, Flush: fc, Simulated: true, Shards: shards}, st)
	c.Start()
	return k, c, st
}

func TestShardedBasicOps(t *testing.T) {
	k, c, _ := newShardedCache(1, 64, 4, UPS())
	if c.Shards() != 4 {
		t.Fatalf("shards = %d", c.Shards())
	}
	run(t, k, func(tk sched.Task) {
		// Blocks 0..15 land on every shard (blk % 4).
		for i := 0; i < 16; i++ {
			b, hit := c.GetBlock(tk, key(1, core.BlockNo(i)))
			if hit {
				t.Errorf("block %d: unexpected hit", i)
			}
			c.Filled(tk, b, core.BlockSize)
			c.Release(tk, b)
		}
		for i := 0; i < 16; i++ {
			b, hit := c.GetBlock(tk, key(1, core.BlockNo(i)))
			if !hit {
				t.Errorf("block %d: expected hit", i)
			}
			c.Release(tk, b)
		}
		if got := c.CacheStats().Hits.Value(); got != 16 {
			t.Errorf("hits = %d, want 16", got)
		}
	})
}

func TestShardedDirtyAcrossShards(t *testing.T) {
	k, c, st := newShardedCache(2, 64, 4, UPS())
	run(t, k, func(tk sched.Task) {
		fill(tk, c, 7, 16) // file 7, blocks 0..15: 4 dirty per shard
		if c.DirtyCount() != 16 {
			t.Fatalf("dirty = %d, want 16", c.DirtyCount())
		}
		// FlushFile must find the file's blocks in every shard.
		c.FlushFile(tk, 1, 7)
		if c.DirtyCount() != 0 {
			t.Fatalf("dirty after FlushFile = %d", c.DirtyCount())
		}
		if len(st.flushed) != 16 {
			t.Fatalf("flushed %d blocks", len(st.flushed))
		}
	})
}

func TestShardedDiscardFile(t *testing.T) {
	k, c, _ := newShardedCache(3, 64, 4, UPS())
	run(t, k, func(tk sched.Task) {
		fill(tk, c, 9, 12)
		saved := c.DiscardFile(tk, 1, 9, 0)
		if saved != 12 {
			t.Fatalf("saved = %d, want 12", saved)
		}
		if c.DirtyCount() != 0 {
			t.Fatalf("dirty after discard = %d", c.DirtyCount())
		}
		if c.CacheStats().SavedWrites.Value() != 12 {
			t.Fatalf("saved writes = %d", c.CacheStats().SavedWrites.Value())
		}
	})
}

func TestShardedFlushAll(t *testing.T) {
	k, c, st := newShardedCache(4, 64, 8, UPS())
	run(t, k, func(tk sched.Task) {
		fill(tk, c, 3, 24)
		c.FlushAll(tk)
		if c.DirtyCount() != 0 || len(st.flushed) != 24 {
			t.Fatalf("dirty=%d flushed=%d", c.DirtyCount(), len(st.flushed))
		}
	})
}

// A width-1 "sharded" cache must behave exactly like the classic
// cache: same counters for the same access pattern.
func TestShardWidthOneMatchesClassic(t *testing.T) {
	counters := func(shards int) string {
		k, c, _ := newShardedCache(5, 32, shards, NVRAMPartial(8))
		var out string
		run(t, k, func(tk sched.Task) {
			fill(tk, c, 1, 16)
			for i := 0; i < 8; i++ {
				b, hit := c.GetBlock(tk, key(2, core.BlockNo(i)))
				if !hit {
					c.Filled(tk, b, core.BlockSize)
				}
				c.Release(tk, b)
			}
			c.FlushAll(tk)
			cs := c.CacheStats()
			out = fmt.Sprintf("l%d h%d e%d f%d nv%d hw%d",
				cs.Lookups.Value(), cs.Hits.Value(), cs.Evictions.Value(),
				cs.FlushedBlocks.Value(), cs.NVRAMWaits.Value(), cs.DirtyHW.Value())
		})
		return out
	}
	if a, b := counters(0), counters(1); a != b {
		t.Fatalf("Shards:0 %q vs Shards:1 %q", a, b)
	}
}

// The NVRAM dirty bound clamps the shard count, so the global bound
// stays exact: 4 NVRAM blocks never hold more than 4 dirty blocks
// no matter how many stripes were asked for.
func TestShardedNVRAMBound(t *testing.T) {
	k, c, _ := newShardedCache(6, 64, 8, NVRAMPartial(4))
	if c.Shards() != 4 {
		t.Fatalf("shards = %d, want clamp to the 4-block NVRAM", c.Shards())
	}
	run(t, k, func(tk sched.Task) {
		fill(tk, c, 1, 12)
		if hw := c.CacheStats().DirtyHW.Value(); hw > 4 {
			t.Fatalf("dirty high water %d exceeds the 4-block NVRAM", hw)
		}
		if c.DirtyCount() > 4 {
			t.Fatalf("dirty count %d exceeds the 4-block NVRAM", c.DirtyCount())
		}
		c.FlushAll(tk)
	})
}

func TestTryStartFillBasics(t *testing.T) {
	k, c, _ := newShardedCache(7, 16, 2, UPS())
	run(t, k, func(tk sched.Task) {
		// Free frames available: a fill is granted and completes into
		// a resident block.
		b, ok := c.TryStartFill(tk, key(1, 0))
		if !ok {
			t.Fatal("TryStartFill refused with free frames")
		}
		c.FinishFill(tk, b, core.BlockSize, nil)
		if !c.Peek(tk, key(1, 0)) {
			t.Fatal("filled block not resident")
		}
		got, hit := c.GetBlock(tk, key(1, 0))
		if !hit {
			t.Fatal("demand read missed a finished fill")
		}
		c.Release(tk, got)
		// Present block: refused.
		if _, ok := c.TryStartFill(tk, key(1, 0)); ok {
			t.Fatal("TryStartFill granted for a resident block")
		}
		if c.CacheStats().ReadaheadFills.Value() != 1 {
			t.Fatalf("readahead fills = %d", c.CacheStats().ReadaheadFills.Value())
		}
	})
}

// The NVRAM residency regression: readahead fills must never flush
// or evict dirty blocks. With every frame dirty or pinned,
// TryStartFill refuses instead of entering the pressure path.
func TestTryStartFillNeverTouchesDirty(t *testing.T) {
	k, c, st := newShardedCache(8, 8, 1, UPS())
	run(t, k, func(tk sched.Task) {
		fill(tk, c, 1, 8) // every frame dirty
		if c.DirtyCount() != 8 {
			t.Fatalf("dirty = %d", c.DirtyCount())
		}
		if _, ok := c.TryStartFill(tk, key(2, 0)); ok {
			t.Fatal("TryStartFill granted with only dirty frames")
		}
		// Residency accounting pinned: nothing flushed, nothing
		// evicted, every dirty block still resident.
		if got := c.CacheStats().FlushedBlocks.Value(); got != 0 {
			t.Fatalf("readahead pressure flushed %d blocks", got)
		}
		if got := c.CacheStats().Evictions.Value(); got != 0 {
			t.Fatalf("readahead evicted %d blocks", got)
		}
		if len(st.flushed) != 0 {
			t.Fatalf("store saw %d flushes", len(st.flushed))
		}
		if c.DirtyCount() != 8 {
			t.Fatalf("dirty count moved to %d", c.DirtyCount())
		}
		for i := 0; i < 8; i++ {
			if !c.Peek(tk, key(1, core.BlockNo(i))) {
				t.Fatalf("dirty block %d lost residency", i)
			}
		}
		c.FlushAll(tk)
	})
}

// A failed fill returns the frame and leaves no index entry.
func TestFinishFillError(t *testing.T) {
	k, c, _ := newShardedCache(9, 8, 2, UPS())
	run(t, k, func(tk sched.Task) {
		b, ok := c.TryStartFill(tk, key(1, 3))
		if !ok {
			t.Fatal("TryStartFill refused")
		}
		c.FinishFill(tk, b, 0, core.ErrInval)
		if c.Peek(tk, key(1, 3)) {
			t.Fatal("failed fill left a resident block")
		}
		// The frame is reusable.
		nb, hit := c.GetBlock(tk, key(1, 3))
		if hit {
			t.Fatal("hit after failed fill")
		}
		c.Filled(tk, nb, core.BlockSize)
		c.Release(tk, nb)
	})
}
