package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sched"
)

func mkBlocks(n int) []*Block {
	bs := make([]*Block, n)
	for i := range bs {
		bs[i] = &Block{Freq: 1, LastUsed: sched.Time(i)}
		bs[i].History = []sched.Time{sched.Time(i)}
	}
	return bs
}

func TestNewReplacePolicyNames(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, name := range []string{"", "lru", "random", "rr", "lfu", "slru", "lru2", "lru-k"} {
		p, ok := NewReplacePolicy(name, rng)
		if !ok || p == nil {
			t.Fatalf("NewReplacePolicy(%q) failed", name)
		}
	}
	if _, ok := NewReplacePolicy("bogus", rng); ok {
		t.Fatal("bogus policy accepted")
	}
}

func TestLRUVictimOrder(t *testing.T) {
	p := NewLRU()
	bs := mkBlocks(3)
	for _, b := range bs {
		p.Add(b)
	}
	p.Touched(bs[0]) // 0 becomes hottest; victim order 1,2,0
	if v := p.Victim(); v != bs[1] {
		t.Fatal("first victim not LRU")
	}
	if v := p.Victim(); v != bs[2] {
		t.Fatal("second victim wrong")
	}
	if v := p.Victim(); v != bs[0] {
		t.Fatal("third victim wrong")
	}
	if p.Victim() != nil || p.Len() != 0 {
		t.Fatal("empty policy misbehaves")
	}
}

func TestRandomPolicyEvictsAll(t *testing.T) {
	p := NewRandom(rand.New(rand.NewSource(7)))
	bs := mkBlocks(10)
	for _, b := range bs {
		p.Add(b)
	}
	p.Remove(bs[4])
	seen := map[*Block]bool{}
	for p.Len() > 0 {
		seen[p.Victim()] = true
	}
	if len(seen) != 9 || seen[bs[4]] {
		t.Fatalf("random policy evicted %d unique, removed block seen=%v", len(seen), seen[bs[4]])
	}
}

func TestLFUVictimIsLeastFrequent(t *testing.T) {
	p := NewLFU()
	bs := mkBlocks(3)
	for _, b := range bs {
		p.Add(b)
	}
	bs[0].Freq = 10
	p.Touched(bs[0])
	bs[2].Freq = 5
	p.Touched(bs[2])
	if v := p.Victim(); v != bs[1] {
		t.Fatalf("LFU victim freq=%d, want the freq=1 block", v.Freq)
	}
	if v := p.Victim(); v != bs[2] {
		t.Fatal("second LFU victim wrong")
	}
}

func TestSLRUPromotion(t *testing.T) {
	p := NewSLRU(4)
	bs := mkBlocks(3)
	for _, b := range bs {
		p.Add(b)
	}
	p.Touched(bs[0]) // promote to protected
	// Victims come from probation first: 1 then 2, then protected 0.
	if v := p.Victim(); v != bs[1] {
		t.Fatal("probation victim wrong")
	}
	if v := p.Victim(); v != bs[2] {
		t.Fatal("second probation victim wrong")
	}
	if v := p.Victim(); v != bs[0] {
		t.Fatal("protected fallback wrong")
	}
}

func TestSLRUProtectedOverflowDemotes(t *testing.T) {
	p := NewSLRU(2)
	bs := mkBlocks(4)
	for _, b := range bs {
		p.Add(b)
	}
	for _, b := range bs {
		p.Touched(b) // all promoted; overflow demotes oldest
	}
	// Protected holds the 2 most recent (2,3); 0,1 demoted to
	// probation, so victims are 0,1 first.
	if v := p.Victim(); v != bs[0] {
		t.Fatal("demoted block not first victim")
	}
	if v := p.Victim(); v != bs[1] {
		t.Fatal("second demoted block not second victim")
	}
}

func TestLRUKPrefersShortHistory(t *testing.T) {
	p := NewLRUK(2)
	a := &Block{History: []sched.Time{100}}      // one reference
	b := &Block{History: []sched.Time{50, 200}}  // two references
	c := &Block{History: []sched.Time{180, 220}} // two, newer K-dist
	for _, x := range []*Block{a, b, c} {
		p.Add(x)
	}
	// a has infinite backward-K distance: evicted first; then b
	// (K-dist 50) before c (K-dist 180).
	if v := p.Victim(); v != a {
		t.Fatal("short-history block not evicted first")
	}
	if v := p.Victim(); v != b {
		t.Fatal("older K-distance not evicted second")
	}
	if v := p.Victim(); v != c {
		t.Fatal("remaining victim wrong")
	}
}

func TestLRUKTouchedReorders(t *testing.T) {
	p := NewLRUK(2)
	a := &Block{History: []sched.Time{25, 35}}
	b := &Block{History: []sched.Time{30, 40}}
	p.Add(a)
	p.Add(b)
	// Initially a's K-distance (25) < b's (30): a would go first.
	// After another reference a's history trims to [35,500]:
	// K-distance 35 > 30, so b becomes the victim.
	a.History = append(a.History, 500)
	p.Touched(a)
	if v := p.Victim(); v != b {
		t.Fatal("re-referenced block evicted despite newer K-distance")
	}
}

// TestPolicyAddRemoveInvariant: for every policy, blocks added and
// removed in arbitrary patterns never duplicate or lose entries.
func TestPolicyAddRemoveInvariant(t *testing.T) {
	mk := []func() ReplacePolicy{
		func() ReplacePolicy { return NewLRU() },
		func() ReplacePolicy { return NewRandom(rand.New(rand.NewSource(3))) },
		func() ReplacePolicy { return NewLFU() },
		func() ReplacePolicy { return NewSLRU(8) },
		func() ReplacePolicy { return NewLRUK(2) },
	}
	for _, ctor := range mk {
		p := ctor()
		prop := func(ops []uint8) bool {
			in := map[*Block]bool{}
			pool := mkBlocks(8)
			for _, op := range ops {
				b := pool[int(op)%len(pool)]
				switch {
				case op%3 == 0 && !in[b]:
					p.Add(b)
					in[b] = true
				case op%3 == 1 && in[b]:
					p.Remove(b)
					in[b] = false
				case op%3 == 2 && in[b]:
					b.Freq++
					b.History = append(b.History, sched.Time(op))
					p.Touched(b)
				}
			}
			want := 0
			for _, v := range in {
				if v {
					want++
				}
			}
			if p.Len() != want {
				return false
			}
			// Drain: every block in the set comes out exactly once.
			seen := map[*Block]bool{}
			for p.Len() > 0 {
				v := p.Victim()
				if v == nil || seen[v] || !in[v] {
					return false
				}
				seen[v] = true
				in[v] = false
			}
			return len(seen) == want
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
	}
}
