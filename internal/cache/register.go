package cache

import "repro/internal/core"

// The cut-and-paste catalogue: every policy this package implements,
// discoverable by name for assemblies and tooling.
func init() {
	r := core.Components()
	for _, name := range []string{"lru", "random", "lfu", "slru", "lru2"} {
		n := name
		r.Register(core.KindReplacePolicy, n, func() any { return n })
	}
	r.Register(core.KindFlushPolicy, "writedelay", func() FlushConfig { return WriteDelay() })
	r.Register(core.KindFlushPolicy, "ups", func() FlushConfig { return UPS() })
	r.Register(core.KindFlushPolicy, "nvram-whole", func(nv int) FlushConfig { return NVRAMWhole(nv) })
	r.Register(core.KindFlushPolicy, "nvram-partial", func(nv int) FlushConfig { return NVRAMPartial(nv) })
}
