package volume

import "repro/internal/core"

// geom is the striping geometry: n sub-volumes, chunks of w blocks.
// A file's block map is cut into w-block chunks; chunk c lives on
// sub-volume (home+c) mod n, and a sub-volume's share is packed
// densely, so chunk c occupies that volume's local blocks
// [(c/n)*w, (c/n)*w + w).
type geom struct {
	n int // sub-volumes
	w int // stripe width in blocks
}

// locate maps a global file block to its (sub-volume, local block).
func (g geom) locate(home int, blk core.BlockNo) (int, core.BlockNo) {
	c := int64(blk) / int64(g.w)
	sub := (home + int(c%int64(g.n))) % g.n
	local := (c/int64(g.n))*int64(g.w) + int64(blk)%int64(g.w)
	return sub, core.BlockNo(local)
}

// localBlocks returns how many local blocks sub holds of a file of
// total global blocks: the dense length of its share, i.e. one more
// than the highest local block index it stores.
func (g geom) localBlocks(home, sub int, total int64) int64 {
	if total <= 0 {
		return 0
	}
	full := total / int64(g.w) // complete chunks
	rem := total % int64(g.w)  // blocks of the partial chunk
	o := int64((sub - home + g.n) % g.n)
	cnt := full / int64(g.n)
	if full%int64(g.n) > o {
		cnt++
	}
	local := cnt * int64(g.w)
	if rem > 0 && full%int64(g.n) == o {
		local += rem
	}
	return local
}
