package volume

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/sched"
)

// The array label is one block on sub-volume 0, held by the reserved
// label file: magic, version and the geometry the array was built
// with. A real array validates it at mount, so reopening a 4-wide
// striped array as, say, a 2-wide affinity one fails loudly instead
// of silently serving the wrong blocks.
const (
	labelMagic   = 0x50564131 // "PVA1"
	labelVersion = 1
	labelBytes   = 24
)

const (
	placementCodeAffinity = 0
	placementCodeStriped  = 1
)

func (a *Array) placementCode() uint32 {
	if a.cfg.Placement == PlacementStriped {
		return placementCodeStriped
	}
	return placementCodeAffinity
}

// writeLabel persists the geometry label through sub-volume 0.
func (a *Array) writeLabel(t sched.Task) error {
	buf := make([]byte, core.BlockSize)
	le := binary.LittleEndian
	le.PutUint32(buf[0:], labelMagic)
	le.PutUint32(buf[4:], labelVersion)
	le.PutUint32(buf[8:], uint32(len(a.subs)))
	le.PutUint32(buf[12:], a.placementCode())
	le.PutUint32(buf[16:], uint32(a.cfg.StripeBlocks))
	if err := a.subs[0].Truncate(t, a.label, labelBytes); err != nil {
		return fmt.Errorf("volume %s: size label: %w", a.name, err)
	}
	if err := a.subs[0].WriteBlocks(t, a.label, []layout.BlockWrite{
		{Blk: 0, Data: buf, Size: labelBytes},
	}); err != nil {
		return fmt.Errorf("volume %s: write label: %w", a.name, err)
	}
	return a.subs[0].UpdateInode(t, a.label)
}

// readLabel loads and validates the label after a real-mode mount.
// A missing label means a fresh array (it appears with the first
// sync); a present label must match the configured geometry.
func (a *Array) readLabel(t sched.Task) error {
	ino, err := a.subs[0].GetInode(t, labelFileID)
	if err == core.ErrNotFound {
		return nil
	}
	if err != nil {
		return fmt.Errorf("volume %s: label inode: %w", a.name, err)
	}
	buf := make([]byte, core.BlockSize)
	if err := a.subs[0].ReadBlock(t, ino, 0, buf); err != nil {
		return fmt.Errorf("volume %s: read label: %w", a.name, err)
	}
	g, err := decodeLabel(buf)
	if err != nil {
		// The reserved inode exists but is not a label (an image
		// written by something else); refuse to guess.
		return fmt.Errorf("volume %s: sub 0 carries no array label: %w", a.name, err)
	}
	if g.nsubs != len(a.subs) {
		return fmt.Errorf("volume %s: image is a %d-volume array, mounted with %d", a.name, g.nsubs, len(a.subs))
	}
	if g.placement != a.placementCode() {
		return fmt.Errorf("volume %s: image placement %s, mounted with %s",
			a.name, placementName(g.placement), a.cfg.Placement)
	}
	if g.placement == placementCodeStriped && g.stripe != a.cfg.StripeBlocks {
		return fmt.Errorf("volume %s: image stripe width %d blocks, mounted with %d", a.name, g.stripe, a.cfg.StripeBlocks)
	}
	a.label = ino
	a.labelDone = true
	return nil
}

// labelGeom is the geometry a label records.
type labelGeom struct {
	nsubs     int
	placement uint32
	stripe    int
}

// decodeLabel parses a label block.
func decodeLabel(buf []byte) (labelGeom, error) {
	le := binary.LittleEndian
	if m := le.Uint32(buf[0:]); m != labelMagic {
		return labelGeom{}, fmt.Errorf("bad label magic %#x", m)
	}
	if v := le.Uint32(buf[4:]); v != labelVersion {
		return labelGeom{}, fmt.Errorf("label version %d, want %d", v, labelVersion)
	}
	return labelGeom{
		nsubs:     int(le.Uint32(buf[8:])),
		placement: le.Uint32(buf[12:]),
		stripe:    int(le.Uint32(buf[16:])),
	}, nil
}

func placementName(code uint32) string {
	if code == placementCodeStriped {
		return PlacementStriped
	}
	return PlacementAffinity
}

// ReadLabel inspects an already-mounted sub-layout for an array
// label and returns the recorded geometry; found is false when the
// reserved inode is absent or carries no label. fsck uses it to
// cross-check a multi-volume image set.
func ReadLabel(t sched.Task, sub layout.Layout) (nsubs int, placement string, stripeBlocks int, found bool, err error) {
	ino, err := sub.GetInode(t, labelFileID)
	if err == core.ErrNotFound {
		return 0, "", 0, false, nil
	}
	if err != nil {
		return 0, "", 0, false, err
	}
	buf := make([]byte, core.BlockSize)
	if err := sub.ReadBlock(t, ino, 0, buf); err != nil {
		return 0, "", 0, false, err
	}
	g, err := decodeLabel(buf)
	if err != nil {
		return 0, "", 0, false, nil
	}
	return g.nsubs, placementName(g.placement), g.stripe, true, nil
}
