package volume

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/sched"
)

// The array label is one block on every member, held by the reserved
// label file: magic, version, the geometry the array was built with,
// and the member's own index. A real array validates all of them at
// mount, so reopening a 4-wide striped array as, say, a 2-wide
// affinity one — or mounting members in a shuffled order — fails
// loudly instead of silently serving the wrong blocks. Array-wide
// recovery cross-checks the members' labels against each other.
const (
	labelMagic   = 0x50564131 // "PVA1"
	labelVersion = 2
	labelBytes   = 28
)

const (
	placementCodeAffinity = 0
	placementCodeStriped  = 1
	placementCodeMirrored = 2
	placementCodeParity   = 3
)

func (a *Array) placementCode() uint32 {
	switch a.cfg.Placement {
	case PlacementStriped:
		return placementCodeStriped
	case PlacementMirrored:
		return placementCodeMirrored
	case PlacementParity:
		return placementCodeParity
	}
	return placementCodeAffinity
}

// widthCoded reports whether a placement records a meaningful chunk
// width in the label (everything except affinity, which has none).
func widthCoded(code uint32) bool { return code != placementCodeAffinity }

// writeLabel persists the geometry label on every member, each copy
// carrying the member's own index.
func (a *Array) writeLabel(t sched.Task) error {
	for i := range a.subs {
		if !a.writeAlive(i) || a.labels[i] == nil {
			continue // dead member: rebuild relabels its replacement
		}
		if err := a.writeMemberLabel(t, i); err != nil {
			return err
		}
	}
	return nil
}

// writeMemberLabel writes one member's copy of the geometry label
// (carrying the member's own index).
func (a *Array) writeMemberLabel(t sched.Task, i int) error {
	sub := a.sub(i)
	buf := make([]byte, core.BlockSize)
	le := binary.LittleEndian
	le.PutUint32(buf[0:], labelMagic)
	le.PutUint32(buf[4:], labelVersion)
	le.PutUint32(buf[8:], uint32(len(a.subs)))
	le.PutUint32(buf[12:], a.placementCode())
	le.PutUint32(buf[16:], uint32(a.cfg.StripeBlocks))
	le.PutUint32(buf[20:], uint32(i))
	// Lineage rides in the label's reserved tail (version unchanged:
	// older labels read back as 0 = "original member"): a promoted
	// spare records which spare slot it came from, so fsck can report
	// the member's provenance offline.
	le.PutUint32(buf[24:], uint32(a.originOf(i)+1))
	if err := sub.Truncate(t, a.labels[i], labelBytes); err != nil {
		return fmt.Errorf("volume %s: size label on member %d: %w", a.name, i, err)
	}
	if err := sub.WriteBlocks(t, a.labels[i], []layout.BlockWrite{
		{Blk: 0, Data: buf, Size: labelBytes},
	}); err != nil {
		return fmt.Errorf("volume %s: write label on member %d: %w", a.name, i, err)
	}
	if err := sub.UpdateInode(t, a.labels[i]); err != nil {
		return fmt.Errorf("volume %s: label inode on member %d: %w", a.name, i, err)
	}
	return nil
}

// readLabel loads and validates every member's label after a
// real-mode mount. A missing label on member 0 means a fresh array
// (labels appear with the first sync); a present label must match
// the configured geometry on every member, and each member must
// carry its own index — a shuffled image set fails here.
func (a *Array) readLabel(t sched.Task) error {
	labels := make([]*layout.Inode, len(a.subs))
	empty := 0
	var want *labelGeom
	firstAlive := -1
	for i := range a.subs {
		if !a.writeAlive(i) {
			continue // dead member: no image to validate
		}
		if firstAlive < 0 {
			firstAlive = i
		}
		sub := a.sub(i)
		ino, err := sub.GetInode(t, labelFileID)
		if err == core.ErrNotFound {
			if i == firstAlive {
				return nil // fresh array, labels not yet written
			}
			return fmt.Errorf("volume %s: member %d carries no label file (member %d does)", a.name, i, firstAlive)
		}
		if err != nil {
			return fmt.Errorf("volume %s: label inode on member %d: %w", a.name, i, err)
		}
		buf := make([]byte, core.BlockSize)
		if err := sub.ReadBlock(t, ino, 0, buf); err != nil {
			return fmt.Errorf("volume %s: read label on member %d: %w", a.name, i, err)
		}
		g, err := decodeLabel(buf)
		if err != nil {
			if ino.Size == 0 {
				// Lockstep allocated the reserved inode but the first
				// sync never wrote its contents (a crash beat it).
				// Adopt the inode so the next sync labels the array —
				// leaving it unlabeled would disable geometry
				// validation forever.
				labels[i] = ino
				empty++
				continue
			}
			return fmt.Errorf("volume %s: member %d carries no array label: %w", a.name, i, err)
		}
		if g.nsubs != len(a.subs) {
			return fmt.Errorf("volume %s: image is a %d-volume array, mounted with %d", a.name, g.nsubs, len(a.subs))
		}
		if g.placement != a.placementCode() {
			return fmt.Errorf("volume %s: image placement %s, mounted with %s",
				a.name, placementName(g.placement), a.cfg.Placement)
		}
		if widthCoded(g.placement) && g.stripe != a.cfg.StripeBlocks {
			return fmt.Errorf("volume %s: image stripe width %d blocks, mounted with %d", a.name, g.stripe, a.cfg.StripeBlocks)
		}
		if g.member != i {
			return fmt.Errorf("volume %s: image in slot %d labels itself member %d (image set shuffled?)",
				a.name, i, g.member)
		}
		if want == nil {
			want = &g
		} else if g.nsubs != want.nsubs || g.placement != want.placement || g.stripe != want.stripe {
			return fmt.Errorf("volume %s: member %d label disagrees with member %d", a.name, i, firstAlive)
		}
		a.setOrigin(i, g.origin)
		labels[i] = ino
	}
	if empty > 0 {
		// A crash beat the label write on some (or all) members. Every
		// member that does carry a label already matched the
		// configured geometry above, so rewriting the empty ones with
		// that geometry is safe: adopt the inodes and leave labelDone
		// false so the next Sync (re)labels every member.
		a.labels = labels
		return nil
	}
	a.labels = labels
	a.labelDone = true
	return nil
}

// labelGeom is the geometry a label records.
type labelGeom struct {
	nsubs     int
	placement uint32
	stripe    int
	member    int
	origin    int // spare slot the member was promoted from, -1 original
}

// decodeLabel parses a label block.
func decodeLabel(buf []byte) (labelGeom, error) {
	le := binary.LittleEndian
	if m := le.Uint32(buf[0:]); m != labelMagic {
		return labelGeom{}, fmt.Errorf("bad label magic %#x", m)
	}
	if v := le.Uint32(buf[4:]); v != labelVersion {
		return labelGeom{}, fmt.Errorf("label version %d, want %d", v, labelVersion)
	}
	return labelGeom{
		nsubs:     int(le.Uint32(buf[8:])),
		placement: le.Uint32(buf[12:]),
		stripe:    int(le.Uint32(buf[16:])),
		member:    int(le.Uint32(buf[20:])),
		origin:    int(le.Uint32(buf[24:])) - 1,
	}, nil
}

func placementName(code uint32) string {
	switch code {
	case placementCodeStriped:
		return PlacementStriped
	case placementCodeMirrored:
		return PlacementMirrored
	case placementCodeParity:
		return PlacementParity
	}
	return PlacementAffinity
}

// LabelInfo is the geometry an on-image label records, as exposed to
// offline tools.
type LabelInfo struct {
	Volumes      int
	Placement    string
	StripeBlocks int
	Member       int
	// Origin is the spare slot this member was promoted from by a
	// self-heal rebuild, -1 for an original member.
	Origin int
}

// ReadLabel inspects an already-mounted sub-layout for an array
// label and returns the recorded geometry; found is false when the
// reserved inode is absent or carries no label. fsck uses it to
// cross-check a multi-volume image set and report member lineage.
func ReadLabel(t sched.Task, sub layout.Layout) (info LabelInfo, found bool, err error) {
	ino, err := sub.GetInode(t, labelFileID)
	if err == core.ErrNotFound {
		return LabelInfo{}, false, nil
	}
	if err != nil {
		return LabelInfo{}, false, err
	}
	buf := make([]byte, core.BlockSize)
	if err := sub.ReadBlock(t, ino, 0, buf); err != nil {
		return LabelInfo{}, false, err
	}
	g, err := decodeLabel(buf)
	if err != nil {
		return LabelInfo{}, false, nil
	}
	return LabelInfo{
		Volumes:      g.nsubs,
		Placement:    placementName(g.placement),
		StripeBlocks: g.stripe,
		Member:       g.member,
		Origin:       g.origin,
	}, true, nil
}
