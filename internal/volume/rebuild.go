package volume

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/sched"
)

// This file is the array's self-healing machinery: the online rebuild
// that reconstructs a dead member onto a freshly formatted replacement
// while the array keeps serving, the scrub that verifies (and repairs)
// copy/parity consistency, and the post-crash repair pass Recover runs
// for the redundant placements.
//
// Rebuild runs in three phases:
//
//  1. Attach (under a.mu): format the replacement, replay the live
//     inode space onto it with RestoreInode (the ordinary allocators —
//     the LFS cursor, the FFS group spreader — would assign different
//     numbers than the set being cloned), align sequential allocation
//     cursors, swap the in-memory shadows, and publish the replacement
//     through a.eff/attachIdx. From here on every new write lands on
//     the replacement too, so the copy phase chases a bounded frontier.
//  2. Copy: per file, under the file's own lock, reconstruct the dead
//     member's local share from the survivors (mirror: read the other
//     copy; parity: XOR the column) and write it to the replacement.
//     Files born after the attach are complete by construction; each
//     finished file flips af.rebuilt, re-enabling direct reads of the
//     member for that file.
//  3. Complete (atomic): clear the dead mark — the array is healthy,
//     served entirely by the effective member set — and sync so the
//     rebuilt state is durable.
//
// A crash mid-rebuild loses nothing: the survivors still hold every
// byte (the replacement was write-only as far as correctness goes),
// and the rebuild is restarted from scratch on a fresh replacement.

// copyBatch bounds the rebuild's write batches (blocks per fan-out).
const copyBatch = 64

// Maintenance gate states. Rebuild and Scrub are whole-array passes
// over the same per-file state; exactly one may run at a time. Both
// take the gate with a CAS and refuse with ErrBusy when it is held —
// the supervisor and a concurrent admin override serialize here
// instead of racing.
const (
	maintIdle = int32(iota)
	maintRebuild
	maintScrub
)

// ErrBusy reports that a rebuild or scrub is already running; callers
// should retry after the running pass completes.
var ErrBusy = errors.New("maintenance pass already in progress")

// Maintenance names the running maintenance pass ("" when idle).
func (a *Array) Maintenance() string {
	switch a.maint.Load() {
	case maintRebuild:
		return "rebuild"
	case maintScrub:
		return "scrub"
	}
	return ""
}

// SetRebuildBudget bounds the rebuild's I/O rate against live
// traffic: after each copy batch (copyBatch blocks) the rebuild task
// pauses for batchDelay, leaving the members free for foreground
// requests. Zero restores full speed.
func (a *Array) SetRebuildBudget(batchDelay time.Duration) {
	if batchDelay < 0 {
		batchDelay = 0
	}
	a.rebuildDelay.Store(int64(batchDelay))
}

// Rebuild reconstructs the dead member's contents onto replacement, a
// freshly constructed (unformatted) layout over a new disk stack, while
// the array keeps serving. On success the array is healthy again with
// replacement serving the dead member's index.
func (a *Array) Rebuild(t sched.Task, replacement layout.Layout) error {
	if a.red == nil {
		return fmt.Errorf("volume %s: rebuild needs a redundant placement (have %s)", a.name, a.cfg.Placement)
	}
	dead := int(a.deadIdx.Load())
	if dead < 0 {
		return fmt.Errorf("volume %s: no dead member to rebuild", a.name)
	}
	if !a.maint.CompareAndSwap(maintIdle, maintRebuild) {
		return fmt.Errorf("volume %s: rebuild: %w (%s)", a.name, ErrBusy, a.Maintenance())
	}
	defer a.maint.Store(maintIdle)

	if err := replacement.Format(t); err != nil {
		return fmt.Errorf("volume %s: format replacement for member %d: %w", a.name, dead, err)
	}
	if err := replacement.Mount(t); err != nil {
		return fmt.Errorf("volume %s: mount replacement for member %d: %w", a.name, dead, err)
	}

	ids, err := a.attachReplacement(t, dead, replacement)
	if err != nil {
		return err
	}

	for _, id := range ids {
		if id == labelFileID {
			a.rebuildDone.Add(1)
			continue // array metadata, rewritten below
		}
		if err := a.rebuildFile(t, id, dead); err != nil {
			if errors.Is(err, core.ErrNotFound) {
				a.rebuildDone.Add(1) // deleted while we were copying
				continue
			}
			return fmt.Errorf("volume %s: rebuild inode %d: %w", a.name, id, err)
		}
		a.rebuildDone.Add(1)
	}

	// Restore the member's geometry label (carries its own index).
	a.mu.Lock(t)
	relabel := !a.cfg.Simulated && a.labelDone && a.labels != nil && a.labels[dead] != nil
	a.mu.Unlock(t)
	if relabel {
		if err := a.writeMemberLabel(t, dead); err != nil {
			return err
		}
	}

	a.deadIdx.Store(-1)
	a.attachIdx.Store(-1)
	// Durable completion: the replacement checkpoints with the rest.
	// If the checkpoint does not land (a power cut mid-sync, say) the
	// on-disk state is still degraded, and claiming health would make
	// a crash recovery trust the stale member image — restore the
	// marks so the caller (and a post-crash mount decision) sees the
	// truth: attached replacement, member still dead.
	if err := a.Sync(t); err != nil {
		a.attachIdx.Store(int32(dead))
		a.deadIdx.Store(int32(dead))
		return fmt.Errorf("volume %s: rebuild completion sync: %w", a.name, err)
	}
	return nil
}

// attachReplacement is rebuild phase 1: replay the inode space, swap
// the shadows and publish the replacement. Returns the live inode set
// to copy.
func (a *Array) attachReplacement(t sched.Task, dead int, replacement layout.Layout) ([]core.FileID, error) {
	rest, ok := replacement.(layout.InodeRestorer)
	if !ok {
		return nil, fmt.Errorf("volume %s: replacement layout %s cannot restore inode numbers", a.name, replacement.Name())
	}
	src := -1
	for i := range a.subs {
		if i != dead {
			src = i
			break
		}
	}
	en, ok := a.sub(src).(layout.InodeEnumerator)
	if !ok {
		return nil, fmt.Errorf("volume %s: member %d cannot enumerate live inodes", a.name, src)
	}

	a.mu.Lock(t)
	defer a.mu.Unlock(t)

	ids := en.LiveInodes(t)
	a.rebuildTotal.Store(int64(len(ids)))
	a.rebuildDone.Store(0)

	restored := make(map[core.FileID]*layout.Inode, len(ids))
	for _, id := range ids {
		sino, err := a.sub(src).GetInode(t, id)
		if err != nil {
			return nil, fmt.Errorf("volume %s: member %d inode %d: %w", a.name, src, id, err)
		}
		rino, err := rest.RestoreInode(t, id, sino.Type)
		if err != nil {
			return nil, fmt.Errorf("volume %s: restore inode %d on replacement: %w", a.name, id, err)
		}
		restored[id] = rino
	}

	// Sequential allocators resume in lockstep with the survivors.
	if ac, ok := replacement.(layout.AllocCursor); ok {
		var maxCur uint64
		all := true
		for i := range a.subs {
			if i == dead {
				continue
			}
			c, ok := a.sub(i).(layout.AllocCursor)
			if !ok {
				all = false
				break
			}
			if v := c.InodeCursor(t); v > maxCur {
				maxCur = v
			}
		}
		if all && maxCur > 0 {
			ac.SetInodeCursor(t, maxCur)
		}
	}

	// Swap the in-memory shadows. Files the replacement does not know
	// (races are excluded: allocation holds a.mu) keep placeholders.
	for id, af := range a.files {
		af.rebuilt.Store(false)
		if r := restored[id]; r != nil {
			af.shadows[dead] = r
		}
	}
	if a.labels != nil && restored[labelFileID] != nil {
		a.labels[dead] = restored[labelFileID]
	}

	// Publish: from here on writes reach the replacement.
	eff := make([]layout.Layout, len(a.subs))
	copy(eff, a.effSubs())
	eff[dead] = replacement
	a.eff.Store(&eff)
	a.attachIdx.Store(int32(dead))
	return ids, nil
}

// rebuildFile is rebuild phase 2 for one file: reconstruct the dead
// member's local share from the survivors and write it to the attached
// replacement, then mark the file rebuilt.
func (a *Array) rebuildFile(t sched.Task, id core.FileID, dead int) error {
	if _, err := a.GetInode(t, id); err != nil {
		return err
	}
	af := a.lookup(t, id)
	if af == nil {
		return core.ErrNotFound
	}
	af.mu.Lock(t)
	defer af.mu.Unlock(t)
	if af.rebuilt.Load() {
		return nil // born after the attach, or already copied
	}

	g := a.red
	total := layout.BlocksForSize(af.global.Size)
	var buf []byte
	if !a.cfg.Simulated {
		buf = make([]byte, core.BlockSize)
	}
	var batch []layout.BlockWrite
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if !a.isCarrier(af.home, dead) {
			if end := localExtent(batch); end > af.shadows[dead].Size {
				if err := a.sub(dead).Truncate(t, af.shadows[dead], end); err != nil {
					return fmt.Errorf("grow replacement shadow: %w", err)
				}
			}
		}
		a.writes.Add(dead, int64(len(batch)))
		err := a.sub(dead).WriteBlocks(t, af.shadows[dead], batch)
		batch = batch[:0]
		if err == nil {
			// The I/O budget: yield the members to foreground traffic
			// between copy batches (holding no locks but the file's).
			if d := a.rebuildDelay.Load(); d > 0 {
				t.Sleep(time.Duration(d))
			}
		}
		return err
	}
	emit := func(lb core.BlockNo, data []byte) error {
		w := layout.BlockWrite{Blk: lb, Size: core.BlockSize}
		if data != nil {
			w.Data = append([]byte(nil), data...)
		}
		batch = append(batch, w)
		if len(batch) >= copyBatch {
			return flush()
		}
		return nil
	}

	if !g.parity {
		// Mirror: the member's share is every chunk whose primary or
		// secondary role it holds; the content is the surviving copy.
		for b := core.BlockNo(0); int64(b) < total; b++ {
			pm, plb := g.primaryLoc(af.home, b)
			sm, slb := g.secondaryLoc(af.home, b)
			var lb core.BlockNo
			var srcm int
			var srclb core.BlockNo
			switch dead {
			case pm:
				lb, srcm, srclb = plb, sm, slb
			case sm:
				lb, srcm, srclb = slb, pm, plb
			default:
				continue
			}
			if af.shadows[srcm].BlockAddr(srclb) < 0 {
				continue // hole on the survivor: stays a hole
			}
			a.reads.Add(srcm, 1)
			if err := a.sub(srcm).ReadBlock(t, af.shadows[srcm], srclb, buf); err != nil {
				return err
			}
			if err := emit(lb, buf); err != nil {
				return err
			}
		}
	} else {
		// Parity: the member's data chunks are reconstructed from
		// their columns; its parity chunks are recomputed from the
		// surviving data.
		for b := core.BlockNo(0); int64(b) < total; b++ {
			if m, dlb := g.dataLoc(af.home, b); m == dead {
				if a.columnIsHole(af, b, total) {
					continue
				}
				if err := a.reconstructData(t, af, b, buf); err != nil {
					return err
				}
				if err := emit(dlb, buf); err != nil {
					return err
				}
			}
		}
		w := int64(g.w)
		d := g.dataChunks()
		C := (total + w - 1) / w
		S := (C + d - 1) / d
		var acc, scratch []byte
		if buf != nil {
			acc = make([]byte, core.BlockSize)
			scratch = make([]byte, core.BlockSize)
		}
		for s := int64(0); s < S; s++ {
			if g.parityMember(af.home, s) != dead {
				continue
			}
			for o := int64(0); o < w; o++ {
				zero(acc)
				any := false
				for j := int64(0); j < d; j++ {
					b := core.BlockNo((s*d+j)*w + o)
					if int64(b) >= total {
						break
					}
					m, lb := g.dataLoc(af.home, b)
					if af.shadows[m].BlockAddr(lb) < 0 {
						continue // hole XORs as zeros
					}
					any = true
					a.reads.Add(m, 1)
					if err := a.sub(m).ReadBlock(t, af.shadows[m], lb, scratch); err != nil {
						return err
					}
					xorInto(acc, scratch)
				}
				if !any {
					continue // all-hole column needs no parity
				}
				if err := emit(core.BlockNo(s*w+o), acc); err != nil {
					return err
				}
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}

	// Settle the shadow's extent and metadata: carriers record the
	// global size and the file metadata (so the pair survives the next
	// loss), non-carriers cover exactly their share.
	need := g.localBlocks(af.home, dead, total) * core.BlockSize
	other := af.home
	if a.isCarrier(af.home, dead) {
		need = af.global.Size
		if dead == af.home {
			other = (af.home + 1) % len(a.subs)
		}
		h, o := af.shadows[dead], af.shadows[other]
		h.Type, h.Nlink, h.Mode = o.Type, o.Nlink, o.Mode
		h.MTime, h.CTime, h.ATime = o.MTime, o.CTime, o.ATime
	}
	if af.shadows[dead].Size < need {
		if err := a.sub(dead).Truncate(t, af.shadows[dead], need); err != nil {
			return err
		}
	}
	if err := a.sub(dead).UpdateInode(t, af.shadows[dead]); err != nil {
		return err
	}
	af.rebuilt.Store(true)
	return nil
}

// columnIsHole reports whether every surviving trace of block b's
// parity column — the parity block and the peer data blocks — is a
// hole, i.e. the column was never written and b reads as zeros.
func (a *Array) columnIsHole(af *afile, b core.BlockNo, total int64) bool {
	g := a.red
	pm, plb := g.parityLoc(af.home, b)
	if af.shadows[pm].BlockAddr(plb) >= 0 {
		return false
	}
	for _, peer := range g.columnPeers(b, total) {
		m, lb := g.dataLoc(af.home, peer)
		if af.shadows[m].BlockAddr(lb) >= 0 {
			return false
		}
	}
	return true
}

// ScrubStats summarizes one consistency scan over a redundant array.
type ScrubStats struct {
	Files      int64 // files scanned
	Blocks     int64 // global data blocks covered
	Skipped    int64 // blocks skipped (member dead, not verifiable)
	Mismatches int64 // copy divergences / parity XOR violations found
	Repaired   int64 // of those, repaired (repair mode)
}

// Scrub verifies the redundant invariant online, file by file under
// each file's own lock: mirrored copies must match, parity columns
// must XOR to zero. In repair mode a diverged copy is rewritten from
// its primary and a violated parity block is recomputed from the data
// (the data blocks are the authority — this is how the torn tail of a
// crashed degraded write is healed). Blocks whose verification needs a
// dead member are counted as skipped. Simulated arrays move no data,
// so the scan issues the reads (costing the modeled time) but cannot
// compare contents.
func (a *Array) Scrub(t sched.Task, repair bool) (ScrubStats, error) {
	var st ScrubStats
	if a.red == nil {
		return st, fmt.Errorf("volume %s: scrub needs a redundant placement (have %s)", a.name, a.cfg.Placement)
	}
	if !a.maint.CompareAndSwap(maintIdle, maintScrub) {
		return st, fmt.Errorf("volume %s: scrub: %w (%s)", a.name, ErrBusy, a.Maintenance())
	}
	defer a.maint.Store(maintIdle)
	src := -1
	for i := range a.subs {
		if int(a.deadIdx.Load()) != i {
			src = i
			break
		}
	}
	en, ok := a.sub(src).(layout.InodeEnumerator)
	if !ok {
		return st, fmt.Errorf("volume %s: member %d cannot enumerate live inodes", a.name, src)
	}
	for _, id := range en.LiveInodes(t) {
		if id == labelFileID {
			continue // per-member content differs by design (member index)
		}
		if err := a.scrubFile(t, id, repair, &st); err != nil {
			if errors.Is(err, core.ErrNotFound) {
				continue // deleted under the scan
			}
			return st, fmt.Errorf("volume %s: scrub inode %d: %w", a.name, id, err)
		}
		st.Files++
	}
	return st, nil
}

// scrubFile scans one file's redundancy under af.mu.
func (a *Array) scrubFile(t sched.Task, id core.FileID, repair bool, st *ScrubStats) error {
	if _, err := a.GetInode(t, id); err != nil {
		return err
	}
	af := a.lookup(t, id)
	if af == nil {
		return core.ErrNotFound
	}
	af.mu.Lock(t)
	defer af.mu.Unlock(t)

	g := a.red
	total := layout.BlocksForSize(af.global.Size)
	real := !a.cfg.Simulated
	var pbuf, sbuf []byte
	if real {
		pbuf = make([]byte, core.BlockSize)
		sbuf = make([]byte, core.BlockSize)
	}

	if !g.parity {
		for b := core.BlockNo(0); int64(b) < total; b++ {
			pm, plb := g.primaryLoc(af.home, b)
			sm, slb := g.secondaryLoc(af.home, b)
			if !a.readAlive(af, pm) || !a.readAlive(af, sm) {
				st.Skipped++
				continue
			}
			st.Blocks++
			if af.shadows[pm].BlockAddr(plb) < 0 && af.shadows[sm].BlockAddr(slb) < 0 {
				continue // both holes
			}
			a.reads.Add(pm, 1)
			if err := a.sub(pm).ReadBlock(t, af.shadows[pm], plb, pbuf); err != nil {
				return err
			}
			a.reads.Add(sm, 1)
			if err := a.sub(sm).ReadBlock(t, af.shadows[sm], slb, sbuf); err != nil {
				return err
			}
			if !real || bytes.Equal(pbuf, sbuf) {
				continue
			}
			st.Mismatches++
			if !repair {
				continue
			}
			// The primary copy wins: both copies hold at least every
			// acknowledged write, so either direction is safe.
			a.writes.Add(sm, 1)
			if err := a.sub(sm).WriteBlocks(t, af.shadows[sm], []layout.BlockWrite{
				{Blk: slb, Data: append([]byte(nil), pbuf...), Size: core.BlockSize},
			}); err != nil {
				return err
			}
			st.Repaired++
		}
		return nil
	}

	w := int64(g.w)
	d := g.dataChunks()
	C := (total + w - 1) / w
	S := (C + d - 1) / d
	var acc []byte
	if real {
		acc = make([]byte, core.BlockSize)
	}
	for s := int64(0); s < S; s++ {
		pm := g.parityMember(af.home, s)
		for o := int64(0); o < w; o++ {
			first := core.BlockNo(s*d*w + o)
			if int64(first) >= total {
				break
			}
			plb := core.BlockNo(s*w + o)
			alive := a.readAlive(af, pm)
			mapped := 0
			cells := []struct {
				m  int
				lb core.BlockNo
			}{}
			for j := int64(0); j < d; j++ {
				b := core.BlockNo((s*d+j)*w + o)
				if int64(b) >= total {
					break
				}
				m, lb := g.dataLoc(af.home, b)
				if !a.readAlive(af, m) {
					alive = false
				}
				cells = append(cells, struct {
					m  int
					lb core.BlockNo
				}{m, lb})
				if af.shadows[m].BlockAddr(lb) >= 0 {
					mapped++
				}
			}
			if !alive {
				st.Skipped += int64(len(cells))
				continue
			}
			st.Blocks += int64(len(cells))
			if mapped == 0 && af.shadows[pm].BlockAddr(plb) < 0 {
				continue // untouched column
			}
			zero(acc)
			for _, c := range cells {
				a.reads.Add(c.m, 1)
				if err := a.sub(c.m).ReadBlock(t, af.shadows[c.m], c.lb, sbuf); err != nil {
					return err
				}
				xorInto(acc, sbuf)
			}
			a.reads.Add(pm, 1)
			if err := a.sub(pm).ReadBlock(t, af.shadows[pm], plb, pbuf); err != nil {
				return err
			}
			if !real || bytes.Equal(acc, pbuf) {
				continue
			}
			st.Mismatches++
			if !repair {
				continue
			}
			a.writes.Add(pm, 1)
			if err := a.sub(pm).WriteBlocks(t, af.shadows[pm], []layout.BlockWrite{
				{Blk: plb, Data: append([]byte(nil), acc...), Size: core.BlockSize},
			}); err != nil {
				return err
			}
			st.Repaired++
		}
	}
	return nil
}

// repairRedundant is the redundant placements' post-crash repair pass:
// it restores the size invariant (both carriers hold the global size,
// every member's shadow covers exactly its share — clamping the global
// size down to the largest fully-backed extent when a member lost its
// tail), then runs a repairing scrub so copies re-converge and torn
// parity columns are recomputed from their data.
func (a *Array) repairRedundant(t sched.Task, st *layout.RecoveryStats) error {
	dead := int(a.deadIdx.Load())
	src := -1
	for i := range a.subs {
		if i != dead {
			src = i
			break
		}
	}
	en, ok := a.sub(src).(layout.InodeEnumerator)
	if !ok {
		return nil
	}
	for _, id := range en.LiveInodes(t) {
		if id == core.RootFile || id == labelFileID {
			continue
		}
		home := a.home(id)
		shadows := make([]*layout.Inode, len(a.subs))
		missing := false
		for i := range a.subs {
			if i == dead {
				continue
			}
			ino, err := a.sub(i).GetInode(t, id)
			if err != nil {
				missing = true // rolled back by resyncLockstep
				break
			}
			shadows[i] = ino
		}
		if missing {
			continue
		}
		// The global size is whichever carrier got further; clamp it
		// down to what every surviving member actually backs.
		c1, c2 := home, (home+1)%len(a.subs)
		var hsize int64
		if c1 != dead {
			hsize = shadows[c1].Size
		}
		if c2 != dead && shadows[c2].Size > hsize {
			hsize = shadows[c2].Size
		}
		total := layout.BlocksForSize(hsize)
		covered := total
		for covered > 0 {
			ok := true
			for s := range a.subs {
				if s == dead {
					continue
				}
				if a.red.localBlocks(home, s, covered)*core.BlockSize > shadows[s].Size {
					ok = false
					break
				}
			}
			if ok {
				break
			}
			covered--
		}
		newSize := hsize
		if covered < total {
			newSize = covered * core.BlockSize
			st.Repairs = append(st.Repairs, fmt.Sprintf(
				"inode %d: global size %d not fully backed, clamped to %d (a member lost its share tail)",
				id, hsize, newSize))
		}
		keep := layout.BlocksForSize(newSize)
		for s := range a.subs {
			if s == dead {
				continue
			}
			need := a.red.localBlocks(home, s, keep) * core.BlockSize
			if a.isCarrier(home, s) {
				need = newSize
			}
			if shadows[s].Size != need {
				if err := a.sub(s).Truncate(t, shadows[s], need); err != nil {
					return fmt.Errorf("volume %s: repair shadow of inode %d on sub %d: %w", a.name, id, s, err)
				}
				if err := a.sub(s).UpdateInode(t, shadows[s]); err != nil {
					return err
				}
			}
		}
	}
	// Copies and parity columns re-converge (data is the authority).
	sst, err := a.Scrub(t, true)
	if err != nil {
		return err
	}
	if sst.Mismatches > 0 {
		st.Repairs = append(st.Repairs, fmt.Sprintf(
			"scrub: %d redundancy violation(s), %d repaired (torn redundant write)", sst.Mismatches, sst.Repaired))
	}
	return nil
}
