package volume

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/sched"
)

// TestClusteredStripedWrites drives a striped array with clustering
// on under the real kernel: the per-member shares fan out as
// concurrent tasks and coalesce into multi-block requests, and every
// byte reads back exactly — through both ReadBlock and ReadRun.
func TestClusteredStripedWrites(t *testing.T) {
	k := sched.NewReal(1)
	defer k.Stop()
	r := newRig(t, k, nil, 3, Config{Placement: PlacementStriped, StripeBlocks: 4})
	r.arr.SetClusterRun(8)
	if got := r.arr.ClusterRun(); got != 8 {
		t.Fatalf("ClusterRun = %d after SetClusterRun(8)", got)
	}
	r.do(t, func(tk sched.Task) error {
		if err := r.arr.Format(tk); err != nil {
			return err
		}
		if err := r.arr.Mount(tk); err != nil {
			return err
		}
		const nblocks = 24 // 6 stripe chunks over 3 members
		ino, _ := writeFile(t, tk, r.arr, nblocks, core.BlockSize)
		if err := r.arr.Sync(tk); err != nil {
			return err
		}
		buf := make([]byte, core.BlockSize)
		for b := core.BlockNo(0); b < nblocks; b++ {
			if err := r.arr.ReadBlock(tk, ino, b, buf); err != nil {
				return err
			}
			if !bytes.Equal(buf, pattern(b, core.BlockSize)) {
				t.Fatalf("block %d corrupt after clustered striped write", b)
			}
		}
		// ReadRun clamps at the stripe boundary: a run starting
		// mid-chunk may not cross into the next member.
		big := make([]byte, 8*core.BlockSize)
		got, err := r.arr.ReadRun(tk, ino, 1, 8, big)
		if err != nil {
			return err
		}
		if got < 1 || got > 3 {
			t.Fatalf("ReadRun from mid-chunk covered %d blocks; the 4-block stripe allows at most 3", got)
		}
		for i := 0; i < got; i++ {
			if !bytes.Equal(big[i*core.BlockSize:(i+1)*core.BlockSize], pattern(core.BlockNo(1+i), core.BlockSize)) {
				t.Fatalf("ReadRun block %d corrupt", 1+i)
			}
		}
		return nil
	})
}

// TestClusteredAffinityReadRun checks the affinity array forwards
// whole runs to the file's home member.
func TestClusteredAffinityReadRun(t *testing.T) {
	k := sched.NewReal(2)
	defer k.Stop()
	r := newRig(t, k, nil, 2, Config{Placement: PlacementAffinity})
	r.arr.SetClusterRun(8)
	r.do(t, func(tk sched.Task) error {
		if err := r.arr.Format(tk); err != nil {
			return err
		}
		if err := r.arr.Mount(tk); err != nil {
			return err
		}
		ino, _ := writeFile(t, tk, r.arr, 8, core.BlockSize)
		if err := r.arr.Sync(tk); err != nil {
			return err
		}
		big := make([]byte, 8*core.BlockSize)
		got, err := r.arr.ReadRun(tk, ino, 0, 8, big)
		if err != nil {
			return err
		}
		if got < 2 {
			t.Fatalf("affinity ReadRun covered %d blocks; want a multi-block run", got)
		}
		for i := 0; i < got; i++ {
			if !bytes.Equal(big[i*core.BlockSize:(i+1)*core.BlockSize], pattern(core.BlockNo(i), core.BlockSize)) {
				t.Fatalf("ReadRun block %d corrupt", i)
			}
		}
		return nil
	})
}

// TestStripedWriteFanOutConcurrent hammers the concurrent write
// fan-out (run with -race): many writers into striped clustered
// files at once, then full verification.
func TestStripedWriteFanOutConcurrent(t *testing.T) {
	k := sched.NewReal(3)
	defer k.Stop()
	r := newRig(t, k, nil, 4, Config{Placement: PlacementStriped, StripeBlocks: 2})
	r.arr.SetClusterRun(8)
	r.do(t, func(tk sched.Task) error {
		if err := r.arr.Format(tk); err != nil {
			return err
		}
		return r.arr.Mount(tk)
	})
	const writers = 6
	const nblocks = 16
	inos := make([]*layout.Inode, writers)
	r.do(t, func(tk sched.Task) error {
		for i := range inos {
			ino, err := r.arr.AllocInode(tk, core.TypeRegular)
			if err != nil {
				return err
			}
			inos[i] = ino
		}
		return nil
	})
	errc := make(chan error, writers)
	for w := 0; w < writers; w++ {
		w := w
		r.k.Go("writer", func(tk sched.Task) {
			var ws []layout.BlockWrite
			for b := 0; b < nblocks; b++ {
				data := pattern(core.BlockNo(b+w*100), core.BlockSize)
				ws = append(ws, layout.BlockWrite{Blk: core.BlockNo(b), Data: data, Size: core.BlockSize})
			}
			inos[w].Size = nblocks * core.BlockSize
			errc <- r.arr.WriteBlocks(tk, inos[w], ws)
		})
	}
	for w := 0; w < writers; w++ {
		if err := <-errc; err != nil {
			t.Fatalf("writer: %v", err)
		}
	}
	r.do(t, func(tk sched.Task) error {
		buf := make([]byte, core.BlockSize)
		for w := 0; w < writers; w++ {
			for b := core.BlockNo(0); b < nblocks; b++ {
				if err := r.arr.ReadBlock(tk, inos[w], b, buf); err != nil {
					return err
				}
				if !bytes.Equal(buf, pattern(b+core.BlockNo(w*100), core.BlockSize)) {
					t.Fatalf("writer %d block %d corrupt", w, b)
				}
			}
		}
		return nil
	})
}
