package volume

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/layout"
	"repro/internal/sched"
)

// This file is the redundant half of the placement policy point: the
// mirrored and rotated-parity geometries, the degraded read path
// (serve a dead member's blocks from its peers), and the redundant
// write path (keep the copies / the parity column consistent with
// every flush). The rebuild machinery that reconstructs a replacement
// member from the survivors lives in rebuild.go.
//
// Both geometries reuse the striped placement's frame: file data is
// cut into w-block chunks, chunk placement rotates with the file's
// home member, and every member packs its share densely from local
// block 0 (nothing else records a shadow's extent, so density is what
// keeps the shadow-size invariant decidable).
//
//   - mirrored: chunk c's primary copy lives on (home+c) mod n, its
//     secondary on the next member — chained declustering, so after a
//     member dies its read load splits over two neighbors instead of
//     doubling on one. A member holds two chunks per period of n
//     (one primary, one secondary), in chunk order, so local slots
//     stay dense.
//   - parity: chunks are grouped into stripes of n-1, the parity
//     block of stripe s lives on (home+s) mod n and the data chunks
//     rotate behind it (RAID-5). Every stripe places exactly one
//     chunk — data or parity — on every member, so a member's local
//     slot for stripe s is simply s.
//
// ErrDegraded is what a non-redundant placement reports when an I/O
// needs a dead member: there is no second copy to serve from.
var ErrDegraded = errors.New("volume: member dead and placement holds no redundancy")

// rgeom is the redundant-placement geometry.
type rgeom struct {
	n      int  // members
	w      int  // chunk width in blocks
	parity bool // rotated parity (RAID-5) vs mirrored pairs
}

// dataChunks is the number of data chunks per parity stripe.
func (g rgeom) dataChunks() int64 { return int64(g.n - 1) }

// --- mirrored geometry ---

// mirrorSlot returns the local slot of chunk c on the member holding
// its role copy: 2*(c/n) plus one when the role's residue is the
// larger of the member's two residues (so the member's two chunks per
// period land in chunk order and the packing stays dense).
func mirrorSlots(c int64, n int64) (primary, secondary int64) {
	base := 2 * (c / n)
	primary, secondary = base, base
	if c%n != 0 {
		primary++
	}
	if c%n == n-1 {
		secondary++
	}
	return primary, secondary
}

// primaryLoc maps a global file block to its primary copy.
func (g rgeom) primaryLoc(home int, blk core.BlockNo) (int, core.BlockNo) {
	c := int64(blk) / int64(g.w)
	m := (home + int(c%int64(g.n))) % g.n
	sp, _ := mirrorSlots(c, int64(g.n))
	return m, core.BlockNo(sp*int64(g.w) + int64(blk)%int64(g.w))
}

// secondaryLoc maps a global file block to its mirror copy.
func (g rgeom) secondaryLoc(home int, blk core.BlockNo) (int, core.BlockNo) {
	c := int64(blk) / int64(g.w)
	m := (home + int(c%int64(g.n)) + 1) % g.n
	_, ss := mirrorSlots(c, int64(g.n))
	return m, core.BlockNo(ss*int64(g.w) + int64(blk)%int64(g.w))
}

// --- parity geometry ---

// parityMember returns the member holding stripe s's parity block.
func (g rgeom) parityMember(home int, s int64) int {
	return (home + int(s%int64(g.n))) % g.n
}

// dataLoc maps a global file block to the member and local block
// holding its (single) data copy under the parity placement.
func (g rgeom) dataLoc(home int, blk core.BlockNo) (int, core.BlockNo) {
	c := int64(blk) / int64(g.w)
	d := g.dataChunks()
	s, j := c/d, c%d
	p := g.parityMember(home, s)
	m := (p + 1 + int(j)) % g.n
	return m, core.BlockNo(s*int64(g.w) + int64(blk)%int64(g.w))
}

// parityLoc maps a global file block to the parity block covering its
// column.
func (g rgeom) parityLoc(home int, blk core.BlockNo) (int, core.BlockNo) {
	c := int64(blk) / int64(g.w)
	s := c / g.dataChunks()
	return g.parityMember(home, s), core.BlockNo(s*int64(g.w) + int64(blk)%int64(g.w))
}

// columnPeers returns the global block numbers of the other data
// blocks in blk's parity column that exist within a file of total
// blocks (the parity block XORs exactly these plus blk itself).
func (g rgeom) columnPeers(blk core.BlockNo, total int64) []core.BlockNo {
	d := g.dataChunks()
	c := int64(blk) / int64(g.w)
	s, j := c/d, c%d
	o := int64(blk) % int64(g.w)
	var peers []core.BlockNo
	for jj := int64(0); jj < d; jj++ {
		if jj == j {
			continue
		}
		b := (s*d+jj)*int64(g.w) + o
		if b < total {
			peers = append(peers, core.BlockNo(b))
		}
	}
	return peers
}

// localBlocks returns how many local blocks member sub holds of a
// file of total global blocks (its dense share length), parity or
// copy blocks included.
func (g rgeom) localBlocks(home, sub int, total int64) int64 {
	if total <= 0 {
		return 0
	}
	w := int64(g.w)
	C := (total + w - 1) / w // chunks
	lastLen := total - (C-1)*w
	if g.parity {
		d := g.dataChunks()
		S := (C + d - 1) / d // stripes
		for s := S - 1; s >= 0; s-- {
			p := g.parityMember(home, s)
			if sub == p {
				// Parity length = the stripe's longest data chunk.
				pl := total - s*d*w
				if pl > w {
					pl = w
				}
				return s*w + pl
			}
			j := int64((sub - p - 1 + g.n) % g.n)
			c := s*d + j
			if j < d && c < C {
				clen := total - c*w
				if clen > w {
					clen = w
				}
				return s*w + clen
			}
			// Partial tail stripe without a chunk for sub: its share
			// ends with the previous (full) stripe.
			if s > 0 {
				return s * w
			}
		}
		return 0
	}
	// Mirrored: the member's share ends with the larger of its last
	// primary and last secondary chunk slots.
	n := int64(g.n)
	rP := int64((sub - home + g.n) % g.n)
	rC := int64((sub - 1 - home + 2*g.n) % g.n)
	var ext int64
	for _, role := range []struct {
		r       int64
		primary bool
	}{{rP, true}, {rC, false}} {
		if role.r > C-1 {
			continue
		}
		c := C - 1 - (C-1-role.r)%n
		length := w
		if c == C-1 {
			length = lastLen
		}
		sp, ss := mirrorSlots(c, n)
		slot := sp
		if !role.primary {
			slot = ss
		}
		if e := slot*w + length; e > ext {
			ext = e
		}
	}
	return ext
}

// --- degraded state ---

// DeadMember returns the index of the array's dead member, -1 when
// the array is healthy.
func (a *Array) DeadMember() int { return int(a.deadIdx.Load()) }

// Degraded reports whether a member is dead.
func (a *Array) Degraded() bool { return a.deadIdx.Load() >= 0 }

// KillMember declares member m dead: reads of its blocks reconstruct
// from peers, writes stop touching it. Only redundant placements can
// keep serving; other placements refuse (their data has no second
// home). The model is single-fault: a second death while one member
// is already dead is rejected.
func (a *Array) KillMember(m int) error {
	if a.single != nil || a.red == nil {
		return fmt.Errorf("%w (placement %s)", ErrDegraded, a.cfg.Placement)
	}
	if m < 0 || m >= len(a.subs) {
		return fmt.Errorf("volume %s: kill member %d of %d", a.name, m, len(a.subs))
	}
	if a.deadIdx.CompareAndSwap(-1, int32(m)) {
		return nil
	}
	if int(a.deadIdx.Load()) == m {
		return nil // idempotent
	}
	return fmt.Errorf("volume %s: member %d already dead, cannot also lose %d (single-fault model)",
		a.name, a.DeadMember(), m)
}

// sub returns the effective layout serving member i: the original
// sub-layout, or the replacement attached by an ongoing or completed
// rebuild.
func (a *Array) sub(i int) layout.Layout {
	if eff := a.eff.Load(); eff != nil {
		return (*eff)[i]
	}
	return a.subs[i]
}

// effSubs returns the effective member layouts (rebuild replacements
// swapped in).
func (a *Array) effSubs() []layout.Layout {
	if eff := a.eff.Load(); eff != nil {
		return *eff
	}
	return a.subs
}

// writeAlive reports whether member i accepts writes: it is not dead,
// or a rebuild has attached its replacement.
func (a *Array) writeAlive(i int) bool {
	return int(a.deadIdx.Load()) != i || int(a.attachIdx.Load()) == i
}

// readAlive reports whether member i can serve reads for file af: it
// is not dead, or af's share has been rebuilt onto the attached
// replacement.
func (a *Array) readAlive(af *afile, i int) bool {
	if int(a.deadIdx.Load()) != i {
		return true
	}
	return int(a.attachIdx.Load()) == i && af.rebuilt.Load()
}

// degradedFor returns the member the file must treat as missing for
// parity/mirror arithmetic (-1 when none): the dead member, unless
// this file's share is already rebuilt on an attached replacement.
func (a *Array) degradedFor(af *afile) int {
	dead := int(a.deadIdx.Load())
	if dead < 0 {
		return -1
	}
	if int(a.attachIdx.Load()) == dead && af.rebuilt.Load() {
		return -1
	}
	return dead
}

// noteDeadErr inspects an I/O error from member m; a disk-death error
// marks the member dead (when the placement can take it) so the
// caller retries degraded. It reports whether the caller may retry.
func (a *Array) noteDeadErr(m int, err error) bool {
	if !errors.Is(err, device.ErrDiskDead) {
		return false
	}
	if a.red == nil {
		return false
	}
	return a.KillMember(m) == nil || a.DeadMember() == m
}

// --- degraded read path ---

// xorInto accumulates b into acc byte-wise. Nil slices (simulated
// stacks) are no-ops: the I/O pattern is modeled, the math skipped.
func xorInto(acc, b []byte) {
	if acc == nil || b == nil {
		return
	}
	n := len(b)
	if len(acc) < n {
		n = len(acc)
	}
	for i := 0; i < n; i++ {
		acc[i] ^= b[i]
	}
}

func zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// readRedundant serves one block under a redundant placement,
// reconstructing from peers when its member is dead.
func (a *Array) readRedundant(t sched.Task, af *afile, blk core.BlockNo, data []byte) error {
	g := a.red
	if !g.parity {
		pm, plb := g.primaryLoc(af.home, blk)
		if a.readAlive(af, pm) {
			a.reads.Add(pm, 1)
			err := a.sub(pm).ReadBlock(t, af.shadows[pm], plb, data)
			if err == nil || !a.noteDeadErr(pm, err) {
				return err
			}
		}
		sm, slb := g.secondaryLoc(af.home, blk)
		if !a.readAlive(af, sm) {
			return fmt.Errorf("volume %s: block %d of inode %d: both copies unavailable", a.name, blk, af.id)
		}
		a.reads.Add(sm, 1)
		a.degraded.Inc()
		return a.sub(sm).ReadBlock(t, af.shadows[sm], slb, data)
	}
	dm, dlb := g.dataLoc(af.home, blk)
	if a.readAlive(af, dm) {
		a.reads.Add(dm, 1)
		err := a.sub(dm).ReadBlock(t, af.shadows[dm], dlb, data)
		if err == nil || !a.noteDeadErr(dm, err) {
			return err
		}
	}
	return a.reconstructData(t, af, blk, data)
}

// reconstructData rebuilds the content of global block blk (whose
// data member is unavailable) by XOR-ing the parity block with the
// column's surviving data blocks.
func (a *Array) reconstructData(t sched.Task, af *afile, blk core.BlockNo, data []byte) error {
	g := a.red
	total := layout.BlocksForSize(af.global.Size)
	zero(data)
	var scratch []byte
	if data != nil {
		scratch = make([]byte, core.BlockSize)
	}
	pm, plb := g.parityLoc(af.home, blk)
	if !a.readAlive(af, pm) {
		return fmt.Errorf("volume %s: block %d of inode %d: data and parity members both unavailable", a.name, blk, af.id)
	}
	a.reads.Add(pm, 1)
	if err := a.sub(pm).ReadBlock(t, af.shadows[pm], plb, scratch); err != nil {
		return err
	}
	xorInto(data, scratch)
	for _, peer := range g.columnPeers(blk, total) {
		m, lb := g.dataLoc(af.home, peer)
		if !a.readAlive(af, m) {
			return fmt.Errorf("volume %s: block %d of inode %d: column peer %d unavailable", a.name, blk, af.id, peer)
		}
		a.reads.Add(m, 1)
		if err := a.sub(m).ReadBlock(t, af.shadows[m], lb, scratch); err != nil {
			return err
		}
		xorInto(data, scratch)
	}
	a.degraded.Inc()
	return nil
}

// --- redundant write path ---

// memberIOError tags an I/O failure with the member it came from, so
// the write path can tell a member death apart from a software error
// without parsing message strings.
type memberIOError struct {
	member int
	err    error
}

func (e *memberIOError) Error() string { return e.err.Error() }
func (e *memberIOError) Unwrap() error { return e.err }

// writeRedundant applies one file's dirty-block batch under a
// redundant placement. Fault detection on the write path is lazy,
// symmetric with the read path: a member that died at the hardware
// since the last health sweep fails its leg of the fan with
// ErrDiskDead. Note the death (degrading the array) and re-plan the
// batch once — the retry routes around the dead member instead of the
// flusher re-issuing a doomed fan forever. A second fault, or any
// non-death error, propagates. Caller holds af.mu.
func (a *Array) writeRedundant(t sched.Task, af *afile, writes []layout.BlockWrite) error {
	err := a.writeRedundantOnce(t, af, writes)
	if err == nil {
		return nil
	}
	var me *memberIOError
	if errors.As(err, &me) && a.noteDeadErr(me.member, me.err) {
		return a.writeRedundantOnce(t, af, writes)
	}
	return err
}

func (a *Array) writeRedundantOnce(t sched.Task, af *afile, writes []layout.BlockWrite) error {
	g := a.red
	per := make([][]layout.BlockWrite, len(a.subs))
	deadm := a.degradedFor(af)

	var guarded []pplKey
	if !g.parity {
		for _, w := range writes {
			pm, plb := g.primaryLoc(af.home, w.Blk)
			sm, slb := g.secondaryLoc(af.home, w.Blk)
			if a.writeAlive(pm) {
				per[pm] = append(per[pm], layout.BlockWrite{Blk: plb, Data: w.Data, Size: w.Size})
			}
			if a.writeAlive(sm) {
				per[sm] = append(per[sm], layout.BlockWrite{Blk: slb, Data: w.Data, Size: w.Size})
			}
		}
	} else {
		var err error
		guarded, err = a.planParityWrites(t, af, writes, per, deadm)
		if err != nil {
			return err
		}
	}
	if err := a.issueRedundant(t, af, per); err != nil {
		// A failed fan may have torn the guarded columns on the media;
		// their records stay pending until a retry (or the crash
		// recovery's ReplayParity) makes the columns consistent again.
		a.disarmParity(guarded)
		return err
	}
	// The fan is issued, but log-structured members commit it
	// independently (a segment fill here, a barrier there) — until
	// every member has, a cut can roll back one side of a column and
	// not the other. Arm the records; the next whole-array barrier
	// retires them.
	a.armParity(guarded)
	return nil
}

// planParityWrites turns a global write batch into per-member local
// writes including the parity updates. For every touched parity
// column it picks, deterministically, the cheapest correct strategy:
//
//   - full column written → parity is the XOR of the new frames, no
//     reads (the full-stripe write path);
//   - a written data member is unavailable → reconstruct-write:
//     parity = XOR(new frames, surviving unwritten frames) — never
//     read the missing member;
//   - otherwise → read-modify-write: parity ^= old ^ new for each
//     written block (the RAID-5 small-write penalty: two reads and
//     two writes per block).
//
// The parity frame carries the whole block (Size = BlockSize);
// file-size granularity lives in the global inode, not the column.
//
// Every degraded column whose parity implies the dead member's chunk
// gets a battery-backed partial-parity record (see paritylog.go); the
// returned keys are retired once the whole fan is on the media.
func (a *Array) planParityWrites(t sched.Task, af *afile, writes []layout.BlockWrite, per [][]layout.BlockWrite, deadm int) ([]pplKey, error) {
	g := a.red
	w := int64(g.w)
	d := g.dataChunks()
	total := layout.BlocksForSize(af.global.Size)
	if e := globalExtent(writes); e > total {
		total = e
	}

	type colref struct {
		s, o int64
	}
	latest := map[core.BlockNo]layout.BlockWrite{}
	var cols []colref
	seen := map[colref]bool{}
	for _, bw := range writes {
		latest[bw.Blk] = bw
		c := int64(bw.Blk) / w
		key := colref{s: c / d, o: int64(bw.Blk) % w}
		if !seen[key] {
			seen[key] = true
			cols = append(cols, key)
		}
	}

	real := false
	for _, bw := range writes {
		if bw.Data != nil {
			real = true
			break
		}
	}
	var scratch []byte
	if real {
		scratch = make([]byte, core.BlockSize)
	}

	var guarded []pplKey
	for _, col := range cols {
		pmem := g.parityMember(af.home, col.s)
		plb := core.BlockNo(col.s*w + col.o)
		// Column membership: every data slot whose global block falls
		// inside the (possibly just-grown) file extent.
		type slot struct {
			blk     core.BlockNo
			member  int
			local   core.BlockNo
			written bool
			frame   []byte
			size    int
		}
		var slots []slot
		unwritten := 0
		for j := int64(0); j < d; j++ {
			b := core.BlockNo((col.s*d+j)*w + col.o)
			if int64(b) >= total {
				continue
			}
			m, lb := g.dataLoc(af.home, b)
			sl := slot{blk: b, member: m, local: lb}
			if bw, ok := latest[b]; ok {
				sl.written, sl.frame, sl.size = true, bw.Data, bw.Size
			} else {
				unwritten++
			}
			slots = append(slots, sl)
		}

		// Data writes (the dead member's slot is simply skipped: its
		// content is representable through the parity from here on).
		writtenOnDead, unwrittenOnDead := false, false
		nwritten := 0
		for _, sl := range slots {
			if !sl.written {
				if sl.member == deadm {
					unwrittenOnDead = true
				}
				continue
			}
			nwritten++
			if sl.member == deadm {
				writtenOnDead = true
				if !a.writeAlive(sl.member) {
					continue
				}
			}
			per[sl.member] = append(per[sl.member], layout.BlockWrite{Blk: sl.local, Data: sl.frame, Size: sl.size})
		}

		if deadm == pmem {
			// The parity member is the missing one: data writes stand
			// alone; the column's redundancy returns with the rebuild.
			continue
		}

		var parity []byte
		if real {
			parity = make([]byte, core.BlockSize)
		}
		switch {
		case unwritten == 0:
			// Full column: parity from the new frames alone. When the
			// dead member's slot is among them, its frame reaches the
			// media only as what this parity implies — guard the
			// column (pp = the dead frame itself) so a torn fan
			// replays to a parity implying exactly that frame over
			// whatever landed (see paritylog.go).
			guard := writtenOnDead && scratch != nil
			var pp []byte
			var ppSlots []ParitySlot
			if guard {
				pp = make([]byte, core.BlockSize)
			}
			for _, sl := range slots {
				xorInto(parity, sl.frame)
				if !guard {
					continue
				}
				if sl.member == deadm {
					xorInto(pp, sl.frame)
				} else {
					ppSlots = append(ppSlots, ParitySlot{Member: sl.member, Local: sl.local})
				}
			}
			if guard {
				a.recordParity(&ParityRecord{
					File: af.id, Stripe: col.s, Offset: col.o,
					PMember: pmem, PLocal: plb, Slots: ppSlots, PP: pp,
				})
				guarded = append(guarded, pplKey{af.id, col.s, col.o})
			}
		case writtenOnDead || (unwritten <= nwritten && !unwrittenOnDead):
			// Reconstruct-write: XOR of the column's current content,
			// reading only surviving unwritten slots. Mandatory when
			// the missing member's slot is written (its old content is
			// unreadable); otherwise chosen when it costs fewer reads
			// than RMW — but never when an unwritten slot sits on the
			// missing member, whose old content only RMW (through the
			// parity) can represent. A written dead slot makes this
			// column write-hole-exposed exactly like RMW does — its
			// new frame exists nowhere but in the parity — so it is
			// guarded too: pp = the dead frame XOR the unwritten
			// cells' content, built from the reads this path performs
			// anyway.
			guard := writtenOnDead && scratch != nil
			var pp []byte
			var ppSlots []ParitySlot
			if guard {
				pp = make([]byte, core.BlockSize)
			}
			for _, sl := range slots {
				if sl.written {
					xorInto(parity, sl.frame)
					if guard {
						if sl.member == deadm {
							xorInto(pp, sl.frame)
						} else {
							ppSlots = append(ppSlots, ParitySlot{Member: sl.member, Local: sl.local})
						}
					}
					continue
				}
				if sl.member == deadm {
					return nil, fmt.Errorf("volume %s: inode %d column (%d,%d): unwritten slot on dead member needs RMW, but a written slot is dead too",
						a.name, af.id, col.s, col.o)
				}
				a.reads.Add(sl.member, 1)
				if err := a.sub(sl.member).ReadBlock(t, af.shadows[sl.member], sl.local, scratch); err != nil {
					return nil, &memberIOError{sl.member, err}
				}
				xorInto(parity, scratch)
				if guard {
					xorInto(pp, scratch)
				}
			}
			if guard {
				a.recordParity(&ParityRecord{
					File: af.id, Stripe: col.s, Offset: col.o,
					PMember: pmem, PLocal: plb, Slots: ppSlots, PP: pp,
				})
				guarded = append(guarded, pplKey{af.id, col.s, col.o})
			}
		default:
			// RMW: parity_new = parity_old ^ Σ (old ^ new) over the
			// written slots. The dead member (if any) holds only an
			// unwritten slot here, which parity_old already covers —
			// which is the write-hole exposure: guard the column with a
			// partial-parity record (pp = parity_old ^ Σ old), built
			// from the very reads RMW performs anyway.
			var pp []byte
			guard := unwrittenOnDead && scratch != nil
			if guard {
				pp = make([]byte, core.BlockSize)
			}
			a.reads.Add(pmem, 1)
			if err := a.sub(pmem).ReadBlock(t, af.shadows[pmem], plb, scratch); err != nil {
				return nil, &memberIOError{pmem, err}
			}
			xorInto(parity, scratch)
			xorInto(pp, scratch)
			var ppSlots []ParitySlot
			for _, sl := range slots {
				if !sl.written {
					continue
				}
				a.reads.Add(sl.member, 1)
				if err := a.sub(sl.member).ReadBlock(t, af.shadows[sl.member], sl.local, scratch); err != nil {
					return nil, &memberIOError{sl.member, err}
				}
				xorInto(parity, scratch)
				xorInto(pp, scratch)
				xorInto(parity, sl.frame)
				if guard {
					ppSlots = append(ppSlots, ParitySlot{Member: sl.member, Local: sl.local})
				}
			}
			if guard {
				a.recordParity(&ParityRecord{
					File: af.id, Stripe: col.s, Offset: col.o,
					PMember: pmem, PLocal: plb, Slots: ppSlots, PP: pp,
				})
				guarded = append(guarded, pplKey{af.id, col.s, col.o})
			}
		}
		per[pmem] = append(per[pmem], layout.BlockWrite{Blk: plb, Data: parity, Size: core.BlockSize})
	}
	return guarded, nil
}

// globalExtent is one past the highest global block of a write batch.
func globalExtent(ws []layout.BlockWrite) int64 {
	var end int64
	for _, w := range ws {
		if e := int64(w.Blk) + 1; e > end {
			end = e
		}
	}
	return end
}

// issueRedundant grows the shadows and fans the per-member batches
// out, mirroring the striped write path's task structure, then
// records the global size on the carrier shadows.
func (a *Array) issueRedundant(t sched.Task, af *afile, per [][]layout.BlockWrite) error {
	writeSub := func(st sched.Task, s int) error {
		// Non-carrier shadows must keep covering their share of the
		// local block map (see the striped path); carriers hold the
		// global size, which covers any share by construction.
		if !a.isCarrier(af.home, s) {
			if end := localExtent(per[s]); end > af.shadows[s].Size {
				if err := a.sub(s).Truncate(st, af.shadows[s], end); err != nil {
					return &memberIOError{s, fmt.Errorf("volume %s: grow sub %d shadow: %w", a.name, s, err)}
				}
			}
		}
		a.writes.Add(s, int64(len(per[s])))
		if err := a.sub(s).WriteBlocks(st, af.shadows[s], per[s]); err != nil {
			return &memberIOError{s, fmt.Errorf("volume %s: write sub %d: %w", a.name, s, err)}
		}
		return nil
	}
	var targets []int
	for s := range a.subs {
		if len(per[s]) > 0 {
			targets = append(targets, s)
		}
	}
	if a.k.Virtual() || len(targets) <= 1 {
		for _, s := range targets {
			if err := writeSub(t, s); err != nil {
				return err
			}
		}
		return a.mirrorCarrierSizes(t, af)
	}
	errs := make([]error, len(targets))
	done := a.k.NewEvent(a.name + ".writefan")
	for i, s := range targets {
		i, s := i, s
		a.k.Go(fmt.Sprintf("%s.write.d%d", a.name, s), func(st sched.Task) {
			errs[i] = writeSub(st, s)
			done.Signal()
		})
	}
	for range targets {
		done.Wait(t)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return a.mirrorCarrierSizes(t, af)
}

// isCarrier reports whether member s is one of the file's two
// size/metadata carriers: the home member and its successor, so the
// global size survives the loss of either.
func (a *Array) isCarrier(home, s int) bool {
	return s == home || s == (home+1)%len(a.subs)
}

// carrierFor returns a live carrier member for the file (preferring
// home), or -1 when both carriers are unavailable — impossible under
// the single-fault model.
func (a *Array) carrierFor(home int) int {
	dead := int(a.deadIdx.Load())
	if home != dead {
		return home
	}
	next := (home + 1) % len(a.subs)
	if next != dead {
		return next
	}
	return -1
}

// mirrorCarrierSizes records the global size on both carrier shadows
// (via their sub-layouts' Truncate, so the write happens under each
// member's lock) — a real-mode remount recovers the size from
// whichever carrier survives.
func (a *Array) mirrorCarrierSizes(t sched.Task, af *afile) error {
	// Caller holds af.mu, the global size's publication lock. Each
	// shadow's size moves under its member's inode lock instead (the
	// member's packer encodes it concurrently), so it is snapshotted
	// through mutateShadow before the compare.
	size := af.global.Size
	for _, s := range []int{af.home, (af.home + 1) % len(a.subs)} {
		if !a.writeAlive(s) {
			continue
		}
		h := af.shadows[s]
		cur := int64(-1)
		a.mutateShadow(t, s, h, func() { cur = h.Size })
		if cur == size {
			continue
		}
		if err := a.sub(s).Truncate(t, h, size); err != nil {
			return &memberIOError{s, fmt.Errorf("volume %s: mirror size on carrier %d: %w", a.name, s, err)}
		}
	}
	return nil
}
