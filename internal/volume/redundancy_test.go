package volume

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/ffs"
	"repro/internal/layout"
	"repro/internal/lfs"
	"repro/internal/sched"
)

// redundantConfigs enumerates the redundant placements the tests
// sweep: mirrored pairs and rotated parity at a few widths.
func redundantConfigs() []struct {
	name  string
	width int
	cfg   Config
} {
	return []struct {
		name  string
		width int
		cfg   Config
	}{
		{"mirrored-2", 2, Config{Placement: PlacementMirrored, StripeBlocks: 2}},
		{"mirrored-3", 3, Config{Placement: PlacementMirrored, StripeBlocks: 2}},
		{"parity-3", 3, Config{Placement: PlacementParity, StripeBlocks: 2}},
		{"parity-4", 4, Config{Placement: PlacementParity, StripeBlocks: 3}},
	}
}

// TestRedundantGeometryInvariants brute-forces the mirrored and
// parity mappings: no two placements share a (member, local block)
// cell, every member's share is densely packed from local block 0,
// and localBlocks agrees exactly with the brute-forced extent.
func TestRedundantGeometryInvariants(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5} {
		for _, w := range []int{1, 2, 3, 8} {
			for _, parity := range []bool{false, true} {
				if parity && n < 3 {
					continue
				}
				g := rgeom{n: n, w: w, parity: parity}
				for home := 0; home < n; home++ {
					for total := int64(1); total <= int64(4*n*w+3); total++ {
						used := make([]map[int64]bool, n)
						for i := range used {
							used[i] = map[int64]bool{}
						}
						occupy := func(m int, lb core.BlockNo, what string) {
							if used[m][int64(lb)] {
								t.Fatalf("n=%d w=%d parity=%v home=%d total=%d: member %d local %d double-booked (%s)",
									n, w, parity, home, total, m, lb, what)
							}
							used[m][int64(lb)] = true
						}
						for b := int64(0); b < total; b++ {
							if parity {
								m, lb := g.dataLoc(home, core.BlockNo(b))
								occupy(m, lb, "data")
							} else {
								pm, plb := g.primaryLoc(home, core.BlockNo(b))
								sm, slb := g.secondaryLoc(home, core.BlockNo(b))
								if pm == sm {
									t.Fatalf("copies on the same member %d", pm)
								}
								occupy(pm, plb, "primary")
								occupy(sm, slb, "secondary")
							}
						}
						if parity {
							// Parity chunks: stripe s places blocks
							// [s*w, s*w+chunkLen) on the parity member.
							d := int64(n - 1)
							C := (total + int64(w) - 1) / int64(w)
							S := (C + d - 1) / d
							for s := int64(0); s < S; s++ {
								pl := total - s*d*int64(w)
								if pl > int64(w) {
									pl = int64(w)
								}
								pm := g.parityMember(home, s)
								for o := int64(0); o < pl; o++ {
									occupy(pm, core.BlockNo(s*int64(w)+o), "parity")
								}
							}
						}
						for m := 0; m < n; m++ {
							want := g.localBlocks(home, m, total)
							if int64(len(used[m])) != want {
								t.Fatalf("n=%d w=%d parity=%v home=%d total=%d member %d: %d local blocks used, localBlocks says %d",
									n, w, parity, home, total, m, len(used[m]), want)
							}
							for lb := int64(0); lb < want; lb++ {
								if !used[m][lb] {
									t.Fatalf("n=%d w=%d parity=%v home=%d total=%d member %d: hole at local %d (share not dense)",
										n, w, parity, home, total, m, lb)
								}
							}
						}
					}
				}
			}
		}
	}
}

// TestParityColumnPeers checks the column arithmetic: a block, its
// peers and the parity block form exactly one full column, all on
// distinct members.
func TestParityColumnPeers(t *testing.T) {
	g := rgeom{n: 4, w: 2, parity: true}
	total := int64(40)
	for home := 0; home < g.n; home++ {
		for b := int64(0); b < total; b++ {
			dm, _ := g.dataLoc(home, core.BlockNo(b))
			pm, _ := g.parityLoc(home, core.BlockNo(b))
			members := map[int]bool{dm: true, pm: true}
			if dm == pm {
				t.Fatalf("data and parity share member %d", dm)
			}
			for _, peer := range g.columnPeers(core.BlockNo(b), total) {
				m, _ := g.dataLoc(home, peer)
				if members[m] {
					t.Fatalf("column of block %d revisits member %d", b, m)
				}
				members[m] = true
			}
		}
	}
}

// TestRedundantWriteReadRemount writes through each redundant
// placement, syncs, remounts fresh layouts over the same disks and
// checks content and size survive — the healthy-path baseline.
func TestRedundantWriteReadRemount(t *testing.T) {
	for _, rc := range redundantConfigs() {
		t.Run(rc.name, func(t *testing.T) {
			k := sched.NewReal(1)
			r := newRig(t, k, nil, rc.width, rc.cfg)
			var ino *layout.Inode
			const nblocks = 23
			r.do(t, func(tk sched.Task) error {
				if err := r.arr.Format(tk); err != nil {
					return err
				}
				if err := r.arr.Mount(tk); err != nil {
					return err
				}
				if _, err := r.arr.AllocInode(tk, core.TypeDirectory); err != nil {
					return err
				}
				ino, _ = writeFile(t, tk, r.arr, nblocks, 100)
				checkFile(t, tk, r.arr, ino, nblocks)
				return r.arr.Sync(tk)
			})

			r2 := newRig(t, k, r.drvs, rc.width, rc.cfg)
			r2.do(t, func(tk sched.Task) error {
				if err := r2.arr.Mount(tk); err != nil {
					return err
				}
				got, err := r2.arr.GetInode(tk, ino.ID)
				if err != nil {
					return err
				}
				if got.Size != ino.Size {
					t.Fatalf("size %d after remount, want %d", got.Size, ino.Size)
				}
				checkFile(t, tk, r2.arr, got, nblocks)
				return nil
			})
		})
	}
}

// TestDegradedServeEveryMember kills each member in turn (on a fresh
// remount of the same disks) and checks every byte is still served —
// reconstruction from the mirror copy or the parity column.
func TestDegradedServeEveryMember(t *testing.T) {
	for _, rc := range redundantConfigs() {
		t.Run(rc.name, func(t *testing.T) {
			k := sched.NewReal(1)
			r := newRig(t, k, nil, rc.width, rc.cfg)
			var ino *layout.Inode
			const nblocks = 17
			r.do(t, func(tk sched.Task) error {
				r.arr.Format(tk)
				r.arr.Mount(tk)
				if _, err := r.arr.AllocInode(tk, core.TypeDirectory); err != nil {
					return err
				}
				ino, _ = writeFile(t, tk, r.arr, nblocks, core.BlockSize)
				// Partial rewrites exercise the parity RMW path.
				for _, b := range []core.BlockNo{1, 5, 11} {
					if err := r.arr.WriteBlocks(tk, ino, []layout.BlockWrite{
						{Blk: b, Data: pattern(b, core.BlockSize), Size: core.BlockSize},
					}); err != nil {
						return err
					}
				}
				return r.arr.Sync(tk)
			})

			for m := 0; m < rc.width; m++ {
				r2 := newRig(t, k, r.drvs, rc.width, rc.cfg)
				r2.do(t, func(tk sched.Task) error {
					if err := r2.arr.Mount(tk); err != nil {
						return err
					}
					if err := r2.arr.KillMember(m); err != nil {
						return err
					}
					got, err := r2.arr.GetInode(tk, ino.ID)
					if err != nil {
						return err
					}
					checkFile(t, tk, r2.arr, got, nblocks)
					return nil
				})
				if r2.arr.DegradedReads() == 0 {
					t.Fatalf("kill member %d: no read needed reconstruction over %d blocks", m, nblocks)
				}
			}
		})
	}
}

// TestDegradedWritesThenRebuild writes while a member is dead (mirror
// single-copy, parity reconstruct-write/skip), rebuilds the member
// onto a fresh replacement, then kills a *different* member and checks
// every byte — which proves the rebuilt member's content is real, not
// still being served by reconstruction around a hole.
func TestDegradedWritesThenRebuild(t *testing.T) {
	for _, rc := range redundantConfigs() {
		if rc.width < 3 {
			continue // needs a second member to lose after the rebuild
		}
		t.Run(rc.name, func(t *testing.T) {
			k := sched.NewReal(1)
			r := newRig(t, k, nil, rc.width, rc.cfg)
			const nblocks = 19
			const dead = 1
			var ino *layout.Inode
			r.do(t, func(tk sched.Task) error {
				r.arr.Format(tk)
				r.arr.Mount(tk)
				if _, err := r.arr.AllocInode(tk, core.TypeDirectory); err != nil {
					return err
				}
				ino, _ = writeFile(t, tk, r.arr, 7, core.BlockSize)
				if err := r.arr.Sync(tk); err != nil {
					return err
				}
				if err := r.arr.KillMember(dead); err != nil {
					return err
				}
				// Degraded writes: overwrite and extend past the healthy
				// extent, single blocks and batches both.
				var ws []layout.BlockWrite
				for b := 0; b < nblocks; b++ {
					ws = append(ws, layout.BlockWrite{Blk: core.BlockNo(b), Data: pattern(core.BlockNo(b), core.BlockSize), Size: core.BlockSize})
				}
				if err := r.arr.WriteBlocks(tk, ino, ws); err != nil {
					return err
				}
				ino.Size = int64(nblocks) * core.BlockSize
				if err := r.arr.UpdateInode(tk, ino); err != nil {
					return err
				}
				checkFile(t, tk, r.arr, ino, nblocks)

				// Rebuild onto a fresh stack.
				drv := device.NewMemDriver(k, "replacement", rigBlocks, nil)
				part := layout.NewPartition(drv, dead, 0, rigBlocks, false)
				repl := lfs.New(k, fmt.Sprintf("d%d", dead), part, lfs.Config{SegBlocks: 32})
				if err := r.arr.Rebuild(tk, repl); err != nil {
					return err
				}
				if r.arr.Degraded() {
					t.Fatal("array still degraded after rebuild")
				}
				done, tot := r.arr.RebuildProgress()
				if tot == 0 || done != tot {
					t.Fatalf("rebuild progress %d/%d, want complete and non-empty", done, tot)
				}
				checkFile(t, tk, r.arr, ino, nblocks)

				// The acid test: lose a different member now. Every block
				// whose surviving copy/column runs through the rebuilt
				// member must still read back.
				other := (dead + 1) % rc.width
				if err := r.arr.KillMember(other); err != nil {
					return err
				}
				checkFile(t, tk, r.arr, ino, nblocks)

				// Scrub (ignoring the dead member) stays clean.
				st, err := r.arr.Scrub(tk, false)
				if err != nil {
					return err
				}
				if st.Mismatches != 0 {
					t.Fatalf("scrub found %d mismatches after rebuild", st.Mismatches)
				}
				return nil
			})
		})
	}
}

// TestRebuildSurvivesRemount rebuilds a member and then remounts the
// array from disk with the replacement's driver in the dead slot —
// the rebuilt image must be a first-class member, label included.
func TestRebuildSurvivesRemount(t *testing.T) {
	for _, rc := range redundantConfigs() {
		t.Run(rc.name, func(t *testing.T) {
			k := sched.NewReal(1)
			r := newRig(t, k, nil, rc.width, rc.cfg)
			const nblocks = 13
			const dead = 0
			var ino *layout.Inode
			replDrv := device.NewMemDriver(k, "replacement", rigBlocks, nil)
			r.do(t, func(tk sched.Task) error {
				r.arr.Format(tk)
				r.arr.Mount(tk)
				if _, err := r.arr.AllocInode(tk, core.TypeDirectory); err != nil {
					return err
				}
				ino, _ = writeFile(t, tk, r.arr, nblocks, 333)
				if err := r.arr.Sync(tk); err != nil {
					return err
				}
				if err := r.arr.KillMember(dead); err != nil {
					return err
				}
				part := layout.NewPartition(replDrv, dead, 0, rigBlocks, false)
				repl := lfs.New(k, fmt.Sprintf("d%d", dead), part, lfs.Config{SegBlocks: 32})
				return r.arr.Rebuild(tk, repl)
			})

			drvs2 := append([]device.Driver(nil), r.drvs...)
			drvs2[dead] = replDrv
			r2 := newRig(t, k, drvs2, rc.width, rc.cfg)
			r2.do(t, func(tk sched.Task) error {
				if err := r2.arr.Mount(tk); err != nil {
					return err
				}
				got, err := r2.arr.GetInode(tk, ino.ID)
				if err != nil {
					return err
				}
				if got.Size != ino.Size {
					t.Fatalf("size %d after rebuilt remount, want %d", got.Size, ino.Size)
				}
				checkFile(t, tk, r2.arr, got, nblocks)
				st, err := r2.arr.Scrub(tk, false)
				if err != nil {
					return err
				}
				if st.Mismatches != 0 || st.Skipped != 0 {
					t.Fatalf("scrub after rebuilt remount: %+v", st)
				}
				return nil
			})
		})
	}
}

// TestKillRefusedWithoutRedundancy checks the placements that hold no
// second copy refuse to run degraded, and the single-fault model
// rejects a second death.
func TestKillRefusedWithoutRedundancy(t *testing.T) {
	k := sched.NewReal(1)
	for _, cfg := range []Config{
		{Placement: PlacementAffinity},
		{Placement: PlacementStriped, StripeBlocks: 2},
	} {
		_, arr := buildArray(t, k, nil, 3, cfg)
		if err := arr.KillMember(1); err == nil {
			t.Fatalf("placement %s accepted a member death", cfg.Placement)
		}
	}
	_, arr := buildArray(t, k, nil, 3, Config{Placement: PlacementParity, StripeBlocks: 2})
	if err := arr.KillMember(1); err != nil {
		t.Fatalf("first death refused: %v", err)
	}
	if err := arr.KillMember(1); err != nil {
		t.Fatalf("idempotent re-kill refused: %v", err)
	}
	if err := arr.KillMember(2); err == nil {
		t.Fatal("second member death accepted (single-fault model)")
	}
}

// TestRedundantGeometryMismatchBothKernels extends the mismatch matrix
// to the redundant placements: wrong chunk width, mirrored image
// mounted as parity (and vice versa), wrong member count and a
// shuffled member order must all be rejected at mount, under both
// kernels.
func TestRedundantGeometryMismatchBothKernels(t *testing.T) {
	for kname, mk := range kernels() {
		t.Run(kname, func(t *testing.T) {
			for _, rc := range []struct {
				name string
				good Config
			}{
				{"mirrored", Config{Placement: PlacementMirrored, StripeBlocks: 4}},
				{"parity", Config{Placement: PlacementParity, StripeBlocks: 4}},
			} {
				t.Run(rc.name, func(t *testing.T) {
					k := mk()
					drvs, arr := buildArray(t, k, nil, 3, rc.good)
					runK(t, k, func(tk sched.Task) {
						if err := arr.Format(tk); err != nil {
							t.Fatalf("Format: %v", err)
						}
						if err := arr.Mount(tk); err != nil {
							t.Fatalf("Mount: %v", err)
						}
						if _, err := arr.AllocInode(tk, core.TypeDirectory); err != nil {
							t.Fatalf("alloc root: %v", err)
						}
						if err := arr.Sync(tk); err != nil {
							t.Fatalf("Sync: %v", err)
						}

						otherRed := Config{Placement: PlacementParity, StripeBlocks: 4}
						if rc.good.Placement == PlacementParity {
							otherRed = Config{Placement: PlacementMirrored, StripeBlocks: 4}
						}
						cases := []struct {
							name string
							drvs []device.Driver
							cfg  Config
							want string
						}{
							{"chunk-width", drvs, Config{Placement: rc.good.Placement, StripeBlocks: 8}, "stripe"},
							{"placement-striped", drvs, Config{Placement: PlacementStriped, StripeBlocks: 4}, "placement"},
							{"placement-redundant", drvs, otherRed, "placement"},
							{"member-order", []device.Driver{drvs[2], drvs[0], drvs[1]}, rc.good, "member"},
						}
						for _, tc := range cases {
							_, bad := buildArray(t, k, tc.drvs, 3, tc.cfg)
							got := bad.Mount(tk)
							if got == nil {
								t.Fatalf("%s mismatch accepted", tc.name)
							}
							if !strings.Contains(got.Error(), tc.want) {
								t.Fatalf("%s error %q does not name the axis (%q)", tc.name, got, tc.want)
							}
						}
						_, ok := buildArray(t, k, drvs, 3, rc.good)
						if err := ok.Mount(tk); err != nil {
							t.Fatalf("matching geometry rejected: %v", err)
						}
					})
				})
			}
		})
	}
}

// TestDegradedCrashRecover crashes (remounts) a degraded array and
// recovers it with the member still missing: every synced byte must
// be served by reconstruction, and a subsequent rebuild returns the
// array to full health.
func TestDegradedCrashRecover(t *testing.T) {
	for _, rc := range redundantConfigs() {
		t.Run(rc.name, func(t *testing.T) {
			k := sched.NewReal(1)
			r := newRig(t, k, nil, rc.width, rc.cfg)
			const nblocks = 11
			const dead = 1
			var ino *layout.Inode
			r.do(t, func(tk sched.Task) error {
				r.arr.Format(tk)
				r.arr.Mount(tk)
				if _, err := r.arr.AllocInode(tk, core.TypeDirectory); err != nil {
					return err
				}
				ino, _ = writeFile(t, tk, r.arr, 5, core.BlockSize)
				if err := r.arr.Sync(tk); err != nil {
					return err
				}
				if err := r.arr.KillMember(dead); err != nil {
					return err
				}
				var ws []layout.BlockWrite
				for b := 0; b < nblocks; b++ {
					ws = append(ws, layout.BlockWrite{Blk: core.BlockNo(b), Data: pattern(core.BlockNo(b), core.BlockSize), Size: core.BlockSize})
				}
				if err := r.arr.WriteBlocks(tk, ino, ws); err != nil {
					return err
				}
				ino.Size = int64(nblocks) * core.BlockSize
				if err := r.arr.UpdateInode(tk, ino); err != nil {
					return err
				}
				return r.arr.Sync(tk)
			})

			// "Crash": fresh layouts over the surviving disks; the
			// harness knows which member is gone and says so up front.
			r2 := newRig(t, k, r.drvs, rc.width, rc.cfg)
			r2.do(t, func(tk sched.Task) error {
				if err := r2.arr.KillMember(dead); err != nil {
					return err
				}
				if _, err := r2.arr.Recover(tk); err != nil {
					return err
				}
				got, err := r2.arr.GetInode(tk, ino.ID)
				if err != nil {
					return err
				}
				if got.Size != int64(nblocks)*core.BlockSize {
					t.Fatalf("size %d after degraded recovery, want %d", got.Size, int64(nblocks)*core.BlockSize)
				}
				checkFile(t, tk, r2.arr, got, nblocks)

				drv := device.NewMemDriver(k, "replacement", rigBlocks, nil)
				part := layout.NewPartition(drv, dead, 0, rigBlocks, false)
				repl := lfs.New(k, fmt.Sprintf("d%d", dead), part, lfs.Config{SegBlocks: 32})
				if err := r2.arr.Rebuild(tk, repl); err != nil {
					return err
				}
				st, err := r2.arr.Scrub(tk, false)
				if err != nil {
					return err
				}
				if st.Mismatches != 0 || st.Skipped != 0 {
					t.Fatalf("scrub after recover+rebuild: %+v", st)
				}
				checkFile(t, tk, r2.arr, got, nblocks)
				return nil
			})
		})
	}
}

// TestScrubRepairsTornParity tears a parity column the way a crash
// between the data write and the parity write does (by writing one
// member's share behind the array's back) and checks a repairing
// scrub restores the XOR invariant.
func TestScrubRepairsTornParity(t *testing.T) {
	k := sched.NewReal(1)
	cfg := Config{Placement: PlacementParity, StripeBlocks: 2}
	r := newRig(t, k, nil, 3, cfg)
	r.do(t, func(tk sched.Task) error {
		r.arr.Format(tk)
		r.arr.Mount(tk)
		if _, err := r.arr.AllocInode(tk, core.TypeDirectory); err != nil {
			return err
		}
		ino, _ := writeFile(t, tk, r.arr, 8, core.BlockSize)
		if err := r.arr.Sync(tk); err != nil {
			return err
		}
		// Corrupt one data block behind the array's back: write garbage
		// straight to the member share.
		af := r.arr.lookup(tk, ino.ID)
		m, lb := r.arr.red.dataLoc(af.home, 3)
		garbage := bytes.Repeat([]byte{0xAB}, core.BlockSize)
		if err := r.arr.Subs()[m].WriteBlocks(tk, af.shadows[m], []layout.BlockWrite{
			{Blk: lb, Data: garbage, Size: core.BlockSize},
		}); err != nil {
			return err
		}
		st, err := r.arr.Scrub(tk, false)
		if err != nil {
			return err
		}
		if st.Mismatches == 0 {
			t.Fatal("scrub missed a torn parity column")
		}
		st, err = r.arr.Scrub(tk, true)
		if err != nil {
			return err
		}
		if st.Repaired == 0 {
			t.Fatal("repairing scrub fixed nothing")
		}
		st, err = r.arr.Scrub(tk, false)
		if err != nil {
			return err
		}
		if st.Mismatches != 0 {
			t.Fatalf("%d mismatches survive the repair", st.Mismatches)
		}
		// The parity now matches the (garbage) data: reconstruction
		// through any member loss returns exactly what is on disk.
		if err := r.arr.KillMember(m); err != nil {
			return err
		}
		buf := make([]byte, core.BlockSize)
		if err := r.arr.ReadBlock(tk, ino, 3, buf); err != nil {
			return err
		}
		if !bytes.Equal(buf, garbage) {
			t.Fatal("degraded read disagrees with the scrubbed column")
		}
		return nil
	})
}

// TestRebuildUnderTraffic hammers the array with concurrent writers
// and readers while a rebuild runs — the interlock under test is the
// attach protocol (new writes must reach the replacement) and the
// per-file copy locking. Run with -race.
func TestRebuildUnderTraffic(t *testing.T) {
	for _, rc := range []struct {
		name  string
		width int
		cfg   Config
	}{
		{"mirrored-3", 3, Config{Placement: PlacementMirrored, StripeBlocks: 2}},
		{"parity-3", 3, Config{Placement: PlacementParity, StripeBlocks: 2}},
	} {
		t.Run(rc.name, func(t *testing.T) {
			k := sched.NewReal(4)
			r := newRig(t, k, nil, rc.width, rc.cfg)
			const files = 6
			const nblocks = 8
			const dead = 2
			inos := make([]*layout.Inode, files)
			r.do(t, func(tk sched.Task) error {
				r.arr.Format(tk)
				r.arr.Mount(tk)
				if _, err := r.arr.AllocInode(tk, core.TypeDirectory); err != nil {
					return err
				}
				for i := range inos {
					inos[i], _ = writeFile(t, tk, r.arr, nblocks, core.BlockSize)
				}
				if err := r.arr.Sync(tk); err != nil {
					return err
				}
				return r.arr.KillMember(dead)
			})

			// Writers rewrite their file repeatedly while the rebuild
			// copies; a reader sweeps all files.
			var wg sync.WaitGroup
			errc := make(chan error, files+2)
			for i := 0; i < files; i++ {
				i := i
				wg.Add(1)
				k.Go(fmt.Sprintf("writer%d", i), func(tk sched.Task) {
					defer wg.Done()
					for round := 0; round < 5; round++ {
						for b := 0; b < nblocks; b++ {
							if err := r.arr.WriteBlocks(tk, inos[i], []layout.BlockWrite{
								{Blk: core.BlockNo(b), Data: pattern(core.BlockNo(b), core.BlockSize), Size: core.BlockSize},
							}); err != nil {
								errc <- fmt.Errorf("writer %d: %w", i, err)
								return
							}
						}
					}
				})
			}
			wg.Add(1)
			k.Go("reader", func(tk sched.Task) {
				defer wg.Done()
				buf := make([]byte, core.BlockSize)
				for round := 0; round < 5; round++ {
					for i := 0; i < files; i++ {
						for b := 0; b < nblocks; b++ {
							if err := r.arr.ReadBlock(tk, inos[i], core.BlockNo(b), buf); err != nil {
								errc <- fmt.Errorf("reader: %w", err)
								return
							}
						}
					}
				}
			})
			wg.Add(1)
			k.Go("rebuild", func(tk sched.Task) {
				defer wg.Done()
				drv := device.NewMemDriver(k, "replacement", rigBlocks, nil)
				part := layout.NewPartition(drv, dead, 0, rigBlocks, false)
				repl := lfs.New(k, fmt.Sprintf("d%d", dead), part, lfs.Config{SegBlocks: 32})
				if err := r.arr.Rebuild(tk, repl); err != nil {
					errc <- fmt.Errorf("rebuild: %w", err)
				}
			})
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Fatal(err)
			}

			// Quiesced: all content correct, scrub clean, and the array
			// survives losing another member.
			r.do(t, func(tk sched.Task) error {
				if r.arr.Degraded() {
					t.Fatal("still degraded after rebuild")
				}
				for i := range inos {
					checkFile(t, tk, r.arr, inos[i], nblocks)
				}
				st, err := r.arr.Scrub(tk, false)
				if err != nil {
					return err
				}
				if st.Mismatches != 0 {
					t.Fatalf("scrub after rebuild under traffic: %+v", st)
				}
				if err := r.arr.KillMember((dead + 1) % rc.width); err != nil {
					return err
				}
				for i := range inos {
					checkFile(t, tk, r.arr, inos[i], nblocks)
				}
				return nil
			})
		})
	}
}

// TestDeadDiskFaultLazyDetection wires a FaultPlan disk-death into a
// member's driver and checks the array notices mid-read — without a
// proactive KillMember — and degrades instead of failing the I/O.
func TestDeadDiskFaultLazyDetection(t *testing.T) {
	k := sched.NewReal(1)
	cfg := Config{Placement: PlacementMirrored, StripeBlocks: 2}
	plan := device.NewFaultPlan(device.FaultConfig{})
	var drvs []device.Driver
	for i := 0; i < 2; i++ {
		drvs = append(drvs, device.NewMemDriver(k, fmt.Sprintf("mem%d", i), rigBlocks, nil))
	}
	drvs[0].SetInjector(plan)
	r := newRig(t, k, drvs, 2, cfg)
	const nblocks = 9
	r.do(t, func(tk sched.Task) error {
		r.arr.Format(tk)
		r.arr.Mount(tk)
		if _, err := r.arr.AllocInode(tk, core.TypeDirectory); err != nil {
			return err
		}
		ino, _ := writeFile(t, tk, r.arr, nblocks, core.BlockSize)
		if err := r.arr.Sync(tk); err != nil {
			return err
		}
		// The disk dies under the array's feet.
		plan.Kill(0)
		checkFile(t, tk, r.arr, ino, nblocks)
		if r.arr.DeadMember() != 0 {
			t.Fatalf("array did not notice the dead disk (dead=%d)", r.arr.DeadMember())
		}
		if r.arr.DegradedReads() == 0 {
			t.Fatal("no degraded reads counted")
		}
		if plan.DeadRejects() == 0 {
			t.Fatal("fault plan rejected nothing")
		}
		return nil
	})
}

// TestRedundantOnFFS runs the degraded-serve + rebuild cycle over FFS
// members — the other kernel of the layout library — exercising the
// bitmap-based RestoreInode and the in-place write path.
func TestRedundantOnFFS(t *testing.T) {
	for _, rc := range []struct {
		name  string
		width int
		cfg   Config
	}{
		{"mirrored-3", 3, Config{Placement: PlacementMirrored, StripeBlocks: 2}},
		{"parity-3", 3, Config{Placement: PlacementParity, StripeBlocks: 2}},
	} {
		t.Run(rc.name, func(t *testing.T) {
			k := sched.NewReal(1)
			fcfg := ffs.Config{BlocksPerGroup: 1024, InodesPerGroup: 64}
			var drvs []device.Driver
			subs := make([]layout.Layout, rc.width)
			for i := 0; i < rc.width; i++ {
				drvs = append(drvs, device.NewMemDriver(k, fmt.Sprintf("mem%d", i), rigBlocks, nil))
				part := layout.NewPartition(drvs[i], i, 0, rigBlocks, false)
				subs[i] = ffs.New(k, fmt.Sprintf("d%d", i), part, fcfg)
			}
			arr, err := New(k, "arr", subs, rc.cfg)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			const nblocks = 15
			const dead = 1
			done := make(chan error, 1)
			k.Go("test", func(tk sched.Task) {
				done <- func() error {
					if err := arr.Format(tk); err != nil {
						return err
					}
					if err := arr.Mount(tk); err != nil {
						return err
					}
					if _, err := arr.AllocInode(tk, core.TypeDirectory); err != nil {
						return err
					}
					ino, _ := writeFile(t, tk, arr, nblocks, core.BlockSize)
					if err := arr.Sync(tk); err != nil {
						return err
					}
					if err := arr.KillMember(dead); err != nil {
						return err
					}
					checkFile(t, tk, arr, ino, nblocks)
					// Degraded overwrite, then rebuild onto a fresh FFS.
					if err := arr.WriteBlocks(tk, ino, []layout.BlockWrite{
						{Blk: 2, Data: pattern(2, core.BlockSize), Size: core.BlockSize},
					}); err != nil {
						return err
					}
					drv := device.NewMemDriver(k, "replacement", rigBlocks, nil)
					part := layout.NewPartition(drv, dead, 0, rigBlocks, false)
					repl := ffs.New(k, fmt.Sprintf("d%d", dead), part, fcfg)
					if err := arr.Rebuild(tk, repl); err != nil {
						return err
					}
					st, err := arr.Scrub(tk, false)
					if err != nil {
						return err
					}
					if st.Mismatches != 0 || st.Skipped != 0 {
						t.Fatalf("scrub after FFS rebuild: %+v", st)
					}
					// Lose a different member: the rebuilt FFS serves.
					if err := arr.KillMember((dead + 1) % rc.width); err != nil {
						return err
					}
					checkFile(t, tk, arr, ino, nblocks)
					return nil
				}()
			})
			if err := <-done; err != nil {
				t.Fatalf("task: %v", err)
			}
		})
	}
}

// TestParityWriteHoleClosed drives the degraded-parity write hole
// deterministically. It plans a guarded degraded RMW column update
// directly (the planner's own per-member fan), then lands each torn
// subset of that fan on the media — nothing, data only, parity only,
// both — the four states a power cut mid-fan can leave. After a
// remount it checks that reconstruction of the dead member's chunk is
// provably garbage in the genuinely torn subsets, that replaying the
// battery-backed partial-parity record restores it in every subset,
// and that re-delivering the interrupted write through the repaired
// column leaves both cells correct.
func TestParityWriteHoleClosed(t *testing.T) {
	cfg := Config{Placement: PlacementParity, StripeBlocks: 2}
	const width = 3
	const nblocks = 8
	const dead = 1
	for _, sc := range []struct {
		name         string
		data, parity bool // which member writes reach the media
		torn         bool // reconstruction is wrong before the replay
	}{
		{"nothing-landed", false, false, false},
		{"data-only", true, false, true},
		{"parity-only", false, true, true},
		{"both-landed", true, true, false},
	} {
		t.Run(sc.name, func(t *testing.T) {
			k := sched.NewReal(1)
			r := newRig(t, k, nil, width, cfg)
			newdata := bytes.Repeat([]byte{0x5A}, core.BlockSize)
			var ino *layout.Inode
			var blk, peer core.BlockNo
			var records []ParityRecord
			r.do(t, func(tk sched.Task) error {
				r.arr.Format(tk)
				r.arr.Mount(tk)
				if _, err := r.arr.AllocInode(tk, core.TypeDirectory); err != nil {
					return err
				}
				ino, _ = writeFile(t, tk, r.arr, nblocks, core.BlockSize)
				if err := r.arr.Sync(tk); err != nil {
					return err
				}
				if err := r.arr.KillMember(dead); err != nil {
					return err
				}
				// Pick a column whose dead member holds an UNWRITTEN data
				// slot: writing the sibling slot then forces the RMW
				// strategy, whose parity_old is the only representation of
				// the dead chunk — the write-hole shape.
				af := r.arr.lookup(tk, ino.ID)
				g := r.arr.red
				found := false
				for b := 0; b < nblocks && !found; b++ {
					bb := core.BlockNo(b)
					dm, _ := g.dataLoc(af.home, bb)
					pm, _ := g.parityLoc(af.home, bb)
					if dm == dead || pm == dead {
						continue
					}
					peers := g.columnPeers(bb, nblocks)
					if len(peers) != 1 {
						continue
					}
					if m, _ := g.dataLoc(af.home, peers[0]); m != dead {
						continue
					}
					blk, peer, found = bb, peers[0], true
				}
				if !found {
					t.Fatalf("no write-hole column for dead member %d", dead)
				}
				writes := []layout.BlockWrite{{Blk: blk, Data: newdata, Size: core.BlockSize}}
				per := make([][]layout.BlockWrite, width)
				dm, _ := g.dataLoc(af.home, blk)
				pm, _ := g.parityLoc(af.home, blk)
				land := map[int]bool{dm: sc.data, pm: sc.parity}
				af.mu.Lock(tk)
				guarded, err := r.arr.planParityWrites(tk, af, writes, per, dead)
				if err == nil && len(guarded) != 1 {
					err = fmt.Errorf("%d guarded columns, want 1", len(guarded))
				}
				// Land the subset straight on the member shares: the crash
				// caught the fan with only these writes on the media.
				for m, w := range per {
					if err != nil || len(w) == 0 || !land[m] {
						continue
					}
					err = r.arr.sub(m).WriteBlocks(tk, af.shadows[m], w)
				}
				af.mu.Unlock(tk)
				if err != nil {
					return err
				}
				records = r.arr.PendingParity()
				if len(records) != 1 {
					t.Fatalf("%d pending parity records, want 1", len(records))
				}
				return r.arr.Sync(tk)
			})

			// "Crash": fresh layouts over the same disks.
			r2 := newRig(t, k, r.drvs, width, cfg)
			r2.do(t, func(tk sched.Task) error {
				if err := r2.arr.KillMember(dead); err != nil {
					return err
				}
				if _, err := r2.arr.Recover(tk); err != nil {
					return err
				}
				got, err := r2.arr.GetInode(tk, ino.ID)
				if err != nil {
					return err
				}
				buf := make([]byte, core.BlockSize)
				if sc.torn {
					// Without the record the hole is real: the dead chunk,
					// reachable only through the torn column, is garbage —
					// and recovery's repairing scrub must skip the column
					// (it cannot read the dead member), so nothing else
					// ever fixes it.
					if err := r2.arr.ReadBlock(tk, got, peer, buf); err != nil {
						return err
					}
					if bytes.Equal(buf, pattern(peer, core.BlockSize)) {
						t.Fatal("reconstruction sound before replay: subset did not tear the column")
					}
				}
				applied, err := r2.arr.ReplayParity(tk, records)
				if err != nil {
					return err
				}
				if applied != 1 {
					t.Fatalf("replay applied %d records, want 1", applied)
				}
				if err := r2.arr.ReadBlock(tk, got, peer, buf); err != nil {
					return err
				}
				if !bytes.Equal(buf, pattern(peer, core.BlockSize)) {
					t.Fatal("dead chunk lost through the write hole")
				}
				// The survivor replay re-delivers the interrupted write
				// through the now-consistent column.
				if err := r2.arr.WriteBlocks(tk, got, []layout.BlockWrite{
					{Blk: blk, Data: newdata, Size: core.BlockSize},
				}); err != nil {
					return err
				}
				if err := r2.arr.ReadBlock(tk, got, blk, buf); err != nil {
					return err
				}
				if !bytes.Equal(buf, newdata) {
					t.Fatal("re-delivered write lost")
				}
				if err := r2.arr.ReadBlock(tk, got, peer, buf); err != nil {
					return err
				}
				if !bytes.Equal(buf, pattern(peer, core.BlockSize)) {
					t.Fatal("re-delivery corrupted the dead chunk")
				}
				return nil
			})
		})
	}
}

// TestDegradedTrafficHammer hammers a degraded array with concurrent
// writers and readers and no rebuild in sight — the steady state
// after a member death. The interlock under test is the degraded
// read/write paths sharing per-file state: reconstruction reads,
// parity RMW planning, and the partial-parity record set. Run with
// -race.
func TestDegradedTrafficHammer(t *testing.T) {
	for _, rc := range []struct {
		name  string
		width int
		cfg   Config
	}{
		{"mirrored-3", 3, Config{Placement: PlacementMirrored, StripeBlocks: 2}},
		{"parity-3", 3, Config{Placement: PlacementParity, StripeBlocks: 2}},
	} {
		t.Run(rc.name, func(t *testing.T) {
			k := sched.NewReal(4)
			r := newRig(t, k, nil, rc.width, rc.cfg)
			const files = 4
			const nblocks = 8
			const dead = 0
			inos := make([]*layout.Inode, files)
			r.do(t, func(tk sched.Task) error {
				r.arr.Format(tk)
				r.arr.Mount(tk)
				if _, err := r.arr.AllocInode(tk, core.TypeDirectory); err != nil {
					return err
				}
				for i := range inos {
					inos[i], _ = writeFile(t, tk, r.arr, nblocks, core.BlockSize)
				}
				if err := r.arr.Sync(tk); err != nil {
					return err
				}
				return r.arr.KillMember(dead)
			})

			// Writers rewrite the same pattern (content never changes, so
			// concurrent readers always have a consistent expectation);
			// single-block writes keep the parity planner on the RMW path.
			var wg sync.WaitGroup
			errc := make(chan error, files*2)
			for i := 0; i < files; i++ {
				i := i
				wg.Add(1)
				k.Go(fmt.Sprintf("writer%d", i), func(tk sched.Task) {
					defer wg.Done()
					for round := 0; round < 6; round++ {
						for b := 0; b < nblocks; b += 2 {
							if err := r.arr.WriteBlocks(tk, inos[i], []layout.BlockWrite{
								{Blk: core.BlockNo(b), Data: pattern(core.BlockNo(b), core.BlockSize), Size: core.BlockSize},
							}); err != nil {
								errc <- fmt.Errorf("writer %d: %w", i, err)
								return
							}
						}
					}
				})
				wg.Add(1)
				k.Go(fmt.Sprintf("reader%d", i), func(tk sched.Task) {
					defer wg.Done()
					buf := make([]byte, core.BlockSize)
					for round := 0; round < 6; round++ {
						for b := 0; b < nblocks; b++ {
							if err := r.arr.ReadBlock(tk, inos[i], core.BlockNo(b), buf); err != nil {
								errc <- fmt.Errorf("reader %d: %w", i, err)
								return
							}
						}
					}
				})
			}
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Fatal(err)
			}

			// Quiesced: every block reads back, and a rebuild starting
			// from the hammered degraded state comes out scrub-clean.
			r.do(t, func(tk sched.Task) error {
				for i := range inos {
					checkFile(t, tk, r.arr, inos[i], nblocks)
				}
				if err := r.arr.Sync(tk); err != nil {
					return err
				}
				drv := device.NewMemDriver(k, "replacement", rigBlocks, nil)
				part := layout.NewPartition(drv, dead, 0, rigBlocks, false)
				repl := lfs.New(k, fmt.Sprintf("d%d", dead), part, lfs.Config{SegBlocks: 32})
				if err := r.arr.Rebuild(tk, repl); err != nil {
					return err
				}
				st, err := r.arr.Scrub(tk, false)
				if err != nil {
					return err
				}
				if st.Mismatches != 0 || st.Skipped != 0 {
					t.Fatalf("scrub after hammer+rebuild: %+v", st)
				}
				return nil
			})
		})
	}
}
