// Package volume implements the framework's multi-volume storage
// array: a volume manager that owns N independent disk stacks (each
// its own bus, disk, driver and storage layout) and exposes the one
// layout.Layout surface everything above it already speaks — cache,
// fsys, Patsy, PFS and the network front-end are unaware they are
// talking to an array.
//
// The manager keeps the component library's cut-and-paste shape: the
// sub-layouts are ordinary LFS or FFS instances, each formatted onto
// its own partition, and the array is just one more layout component
// an assembly mounts with fsys.AddVolume. Placement is a policy
// point with four implementations:
//
//   - "affinity": every file lives wholly on one sub-volume chosen
//     by a hash of its inode number — the paper's many-file-systems-
//     over-many-disks situation collapsed behind a single mount.
//   - "striped": file data is striped across every sub-volume in
//     chunks of StripeBlocks, rotated by the file's home volume, so
//     large files spread their I/O over all disks.
//   - "mirrored": every chunk is written to two members (chained
//     declustering: the copy lives on the primary's successor), so
//     the array serves through the loss of any single member.
//   - "parity": RAID-5-style rotated parity — stripes of n-1 data
//     chunks plus one parity chunk whose member rotates with the
//     stripe, tolerating any single member loss at 1/n capacity
//     overhead instead of mirroring's 1/2.
//
// The redundant placements serve degraded reads by reconstruction,
// keep copies/parity consistent on every write (including while a
// member is down), and support online rebuild of a replacement
// member from the survivors (rebuild.go).
//
// Inode numbers stay in lockstep across the sub-layouts: every
// allocation and free is applied to all of them in order, so a
// file's ID is the same everywhere and routing needs no translation
// table. In striped mode the manager keeps a global inode per file
// (the object the front-end sees) and per-sub shadow inodes that
// carry each volume's share of the block map; the home shadow also
// persists the global size, which is what makes a real-mode array
// remountable. Sync fans out to the sub-volumes — concurrently under
// the real kernel, in deterministic sub order under the virtual one.
//
// Crash consistency across the array is per-sub-volume only (as with
// any striped volume manager without a write-ahead log): a crash
// between sub syncs can lose the tail of a stripe. A one-block label
// file written on sub-volume 0 records the array geometry so a real
// array refuses to mount under the wrong -volumes/-placement/-stripe
// configuration.
package volume

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/sched"
	"repro/internal/stats"
)

// Placement policy names.
const (
	PlacementAffinity = "affinity"
	PlacementStriped  = "striped"
	PlacementMirrored = "mirrored"
	PlacementParity   = "parity"
)

// DefaultStripeBlocks is the stripe width used when none is given:
// 8 blocks (32 KB), two of the trace generator's IO chunks.
const DefaultStripeBlocks = 8

// Config selects the array's policies.
type Config struct {
	// Placement routes file data: "affinity" (default), "striped",
	// "mirrored" (needs ≥ 2 members) or "parity" (needs ≥ 3).
	Placement string
	// StripeBlocks is the stripe chunk width in file-system blocks
	// for the striped and redundant placements (default
	// DefaultStripeBlocks).
	StripeBlocks int
	// Simulated marks an array whose partitions move no data; it
	// gates the simulator-only PlaceExisting path and skips label
	// persistence.
	Simulated bool
}

// labelFileID is the reserved inode number of the array's geometry
// label, allocated on every sub-volume right after the root
// directory. It only holds on layouts with sequential inode
// allocation (the LFS); when a sub-layout assigns a different
// number, the label is simply not persisted.
const labelFileID = core.RootFile + 1

// afile is the array's per-file state.
type afile struct {
	id   core.FileID
	home int
	mu   sched.Mutex // serializes write/truncate/free fan-outs

	// global is the inode the front-end holds. In affinity mode it
	// is the home sub-volume's inode itself; in striped and redundant
	// modes it is array-owned and shadows carry the per-sub block
	// maps.
	global  *layout.Inode
	shadows []*layout.Inode // indexed by sub; affinity loads home only

	// rebuilt, during an online rebuild, marks that this file's share
	// on the dead member has been reconstructed onto the attached
	// replacement: reads of that member may go direct again and
	// parity updates may read-modify-write it. Written under af.mu;
	// read locklessly on the read path, hence atomic.
	rebuilt atomic.Bool
}

// Array is the volume manager. It implements layout.Layout.
type Array struct {
	k    sched.Kernel
	name string
	subs []layout.Layout
	cfg  Config

	striped bool
	stripe  geom
	red     *rgeom // non-nil for the mirrored/parity placements

	// single short-circuits a width-1 array into a pure passthrough:
	// every method delegates directly, so a one-volume array is
	// byte-identical to mounting the sub-layout itself.
	single layout.Layout

	// Degraded/rebuild state. deadIdx is the dead member (-1 none);
	// attachIdx is the member whose rebuild replacement is attached
	// and receiving writes (-1 none); eff, when non-nil, is the
	// effective member slice with replacements swapped in (a.subs
	// itself stays immutable so lock-free readers never race a swap).
	deadIdx   atomic.Int32
	attachIdx atomic.Int32
	eff       atomic.Pointer[[]layout.Layout]

	// maint is the single maintenance gate: Rebuild and Scrub each
	// CAS it from idle and refuse (ErrBusy) when the other holds it,
	// so a supervisor and an admin override can never run two repair
	// passes over the same files at once. Progress counters export to
	// telemetry.
	maint        atomic.Int32
	rebuildDone  atomic.Int64
	rebuildTotal atomic.Int64

	// rebuildDelay is the rebuild's I/O budget against live traffic:
	// a pause (ns) inserted after every copy batch. Zero = full speed.
	rebuildDelay atomic.Int64

	// Hot-spare pool: idle pre-constructed member stacks a confirmed
	// death promotes onto (spare.go). origin records each member's
	// lineage (the spare index it was promoted from, -1 = original),
	// persisted in the geometry label. All under spareMu — a plain
	// mutex, so admin scrapers may read pool state without kernel
	// involvement.
	spareMu       sync.Mutex
	spares        []layout.Layout
	origin        []int32
	promotions    atomic.Int64
	spareRefusals atomic.Int64

	// ppl is the battery-backed partial-parity log guarding in-flight
	// degraded column updates against the RAID-5 write hole (see
	// paritylog.go).
	ppl parityLog

	mu        sched.Mutex
	files     map[core.FileID]*afile
	labels    []*layout.Inode // per-member shadows of the label file
	labelDone bool

	reads    *stats.Group
	writes   *stats.Group
	syncs    *stats.Counter
	degraded *stats.Counter // reads served by reconstruction
}

// New builds an array over subs. The sub-layouts must be freshly
// constructed (unformatted/unmounted); call Format or Mount on the
// array, never on the subs directly, so the lockstep invariant
// holds.
func New(k sched.Kernel, name string, subs []layout.Layout, cfg Config) (*Array, error) {
	if len(subs) == 0 {
		return nil, fmt.Errorf("volume %s: array needs at least one sub-volume", name)
	}
	switch cfg.Placement {
	case "", PlacementAffinity:
		cfg.Placement = PlacementAffinity
	case PlacementStriped:
	case PlacementMirrored:
		if len(subs) < 2 {
			return nil, fmt.Errorf("volume %s: mirrored placement needs at least 2 members, have %d", name, len(subs))
		}
	case PlacementParity:
		if len(subs) < 3 {
			return nil, fmt.Errorf("volume %s: parity placement needs at least 3 members, have %d", name, len(subs))
		}
	default:
		return nil, fmt.Errorf("volume %s: unknown placement %q", name, cfg.Placement)
	}
	if cfg.StripeBlocks <= 0 {
		cfg.StripeBlocks = DefaultStripeBlocks
	}
	a := &Array{
		k:       k,
		name:    name,
		subs:    subs,
		cfg:     cfg,
		striped: cfg.Placement == PlacementStriped && len(subs) > 1,
		stripe:  geom{n: len(subs), w: cfg.StripeBlocks},
	}
	a.deadIdx.Store(-1)
	a.attachIdx.Store(-1)
	a.origin = make([]int32, len(subs))
	for i := range a.origin {
		a.origin[i] = -1
	}
	if cfg.Placement == PlacementMirrored || cfg.Placement == PlacementParity {
		a.red = &rgeom{n: len(subs), w: cfg.StripeBlocks, parity: cfg.Placement == PlacementParity}
	}
	if len(subs) == 1 {
		a.single = subs[0]
		return a, nil
	}
	a.mu = k.NewMutex(name + ".array")
	a.files = make(map[core.FileID]*afile)
	a.reads = stats.NewGroup(name + ".array_blocks_read")
	a.writes = stats.NewGroup(name + ".array_blocks_written")
	for i := range subs {
		lbl := fmt.Sprintf("d%d", i)
		a.reads.Member(lbl)
		a.writes.Member(lbl)
	}
	a.syncs = stats.NewCounter(name + ".array_syncs")
	if a.red != nil {
		// Registered only for redundant placements so the existing
		// placements' stats output stays byte-identical.
		a.degraded = stats.NewCounter(name + ".array_degraded_reads")
	}
	return a, nil
}

// Width returns the number of sub-volumes.
func (a *Array) Width() int { return len(a.subs) }

// SetClusterRun implements layout.Clustered by forwarding the
// run-size cap to every member.
func (a *Array) SetClusterRun(n int) {
	for _, sub := range a.subs {
		layout.SetClusterRun(sub, n)
	}
}

// ClusterRun implements layout.Clustered (the members share one cap).
func (a *Array) ClusterRun() int {
	if c, ok := a.subs[0].(layout.Clustered); ok {
		return c.ClusterRun()
	}
	return 1
}

// SetVectored implements layout.Vectored by forwarding the
// scatter-gather switch to every member.
func (a *Array) SetVectored(on bool) {
	for _, sub := range a.subs {
		layout.SetVectored(sub, on)
	}
}

// VectoredIO implements layout.Vectored (the members share the flag).
func (a *Array) VectoredIO() bool {
	if v, ok := a.subs[0].(layout.Vectored); ok {
		return v.VectoredIO()
	}
	return false
}

// StagedCopyBytes implements layout.StagedCopy as the sum over the
// effective members.
func (a *Array) StagedCopyBytes() int64 {
	var n int64
	for _, sub := range a.effSubs() {
		n += layout.StagedCopyBytes(sub)
	}
	return n
}

// Placement returns the placement policy in effect.
func (a *Array) Placement() string { return a.cfg.Placement }

// Subs returns the effective sub-layouts — rebuild replacements
// swapped in (read-only use: checks, reports).
func (a *Array) Subs() []layout.Layout { return a.effSubs() }

// Name identifies the array and its shape; a width-1 array is
// transparent and reports the sub-layout's own name.
func (a *Array) Name() string {
	if a.single != nil {
		return a.single.Name()
	}
	if a.striped {
		return fmt.Sprintf("array(%dx%s,striped:%d)", len(a.subs), a.subs[0].Name(), a.cfg.StripeBlocks)
	}
	if a.red != nil {
		return fmt.Sprintf("array(%dx%s,%s:%d)", len(a.subs), a.subs[0].Name(), a.cfg.Placement, a.cfg.StripeBlocks)
	}
	return fmt.Sprintf("array(%dx%s,affinity)", len(a.subs), a.subs[0].Name())
}

// arrayOwned reports whether the array (not the home member) owns the
// global inode: true for the striped and redundant placements, where
// shadows carry per-member block maps.
func (a *Array) arrayOwned() bool { return a.striped || a.red != nil }

// home hashes an inode number onto its home sub-volume with a
// splitmix64-style finalizer, so consecutive IDs spread evenly and
// deterministically.
func (a *Array) home(id core.FileID) int {
	x := uint64(id)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(len(a.subs)))
}

// Format initializes every sub-volume.
func (a *Array) Format(t sched.Task) error {
	if a.single != nil {
		return a.single.Format(t)
	}
	for i, sub := range a.subs {
		if err := sub.Format(t); err != nil {
			return fmt.Errorf("volume %s: format sub %d: %w", a.name, i, err)
		}
	}
	return nil
}

// Mount mounts every sub-volume and, on a real array, validates the
// geometry label written by the incarnation that formatted it.
func (a *Array) Mount(t sched.Task) error {
	if a.single != nil {
		return a.single.Mount(t)
	}
	for i, sub := range a.subs {
		if int(a.deadIdx.Load()) == i {
			continue // dead member: mounted by rebuild onto a replacement
		}
		if err := sub.Mount(t); err != nil {
			return fmt.Errorf("volume %s: mount sub %d: %w", a.name, i, err)
		}
	}
	if !a.cfg.Simulated {
		if err := a.readLabel(t); err != nil {
			return err
		}
	}
	return nil
}

// Sync flushes every sub-volume: deterministic sub order under the
// virtual kernel, a concurrent task fan-out under the real one. The
// geometry label is written (once) before the first real sync so it
// is covered by the sub-0 checkpoint.
func (a *Array) Sync(t sched.Task) error {
	if a.single != nil {
		return a.single.Sync(t)
	}
	a.mu.Lock(t)
	needLabel := !a.cfg.Simulated && !a.labelDone && a.labelReady()
	if needLabel {
		a.labelDone = true // claimed; concurrent syncs skip it
	}
	a.mu.Unlock(t)
	if needLabel {
		if err := a.writeLabel(t); err != nil {
			a.mu.Lock(t)
			a.labelDone = false
			a.mu.Unlock(t)
			return err
		}
	}
	a.syncs.Inc()
	if a.k.Virtual() {
		for i := range a.subs {
			if !a.writeAlive(i) {
				continue // dead member with no replacement attached
			}
			if err := a.sub(i).Sync(t); err != nil {
				if a.noteDeadErr(i, err) {
					continue // died at the hardware; redundancy carries its share
				}
				return fmt.Errorf("volume %s: sync sub %d: %w", a.name, i, err)
			}
		}
		return nil
	}
	errs := make([]error, len(a.subs))
	done := a.k.NewEvent(a.name + ".syncfan")
	n := 0
	for i := range a.subs {
		if !a.writeAlive(i) {
			continue
		}
		i := i
		n++
		a.k.Go(fmt.Sprintf("%s.sync.d%d", a.name, i), func(st sched.Task) {
			errs[i] = a.sub(i).Sync(st)
			done.Signal()
		})
	}
	for j := 0; j < n; j++ {
		done.Wait(t)
	}
	for i, err := range errs {
		if err != nil {
			if a.noteDeadErr(i, err) {
				continue // died at the hardware; redundancy carries its share
			}
			return fmt.Errorf("volume %s: sync sub %d: %w", a.name, i, err)
		}
	}
	return nil
}

// labelReady reports (under a.mu) whether the label shadows exist and
// carry the reserved ID — i.e. the label file can be written. Dead
// members' entries may be nil placeholders.
func (a *Array) labelReady() bool {
	if a.labels == nil {
		return false
	}
	for _, l := range a.labels {
		if l != nil {
			return l.ID == labelFileID
		}
	}
	return false
}

// AllocInode creates a file on every sub-volume in lockstep and
// returns the array's global inode. The first allocation is the
// root directory; the geometry label file is allocated immediately
// after it so the reserved ID is stable.
func (a *Array) AllocInode(t sched.Task, typ core.FileType) (*layout.Inode, error) {
	if a.single != nil {
		return a.single.AllocInode(t, typ)
	}
	a.mu.Lock(t)
	defer a.mu.Unlock(t)
	af, err := a.allocLocked(t, typ)
	if err != nil {
		return nil, err
	}
	if af.id == core.RootFile && a.labels == nil {
		lf, err := a.allocLocked(t, core.TypeRegular)
		if err != nil {
			return nil, fmt.Errorf("volume %s: label allocation: %w", a.name, err)
		}
		// The label is array metadata, not a client file: each member
		// keeps its own copy and it never enters the file table.
		a.labels = lf.shadows
		delete(a.files, lf.id)
	}
	return af.global, nil
}

// allocLocked applies one allocation to every sub-volume, keeping
// their inode spaces in lockstep. A dead member is skipped (its
// shadow becomes an in-memory placeholder that rebuild makes real).
// Caller holds a.mu.
func (a *Array) allocLocked(t sched.Task, typ core.FileType) (*afile, error) {
	shadows := make([]*layout.Inode, len(a.subs))
	var id core.FileID
	got := false
	undo := func(upto int) {
		for j := 0; j < upto; j++ {
			if !a.writeAlive(j) || shadows[j] == nil {
				continue
			}
			_ = a.sub(j).FreeInode(t, shadows[j].ID)
		}
	}
	for i := range a.subs {
		if !a.writeAlive(i) {
			continue
		}
		ino, err := a.sub(i).AllocInode(t, typ)
		if err != nil {
			// Restore lockstep: undo the allocations already made.
			undo(i)
			return nil, err
		}
		if !got {
			id, got = ino.ID, true
		} else if ino.ID != id {
			_ = a.sub(i).FreeInode(t, ino.ID)
			undo(i)
			return nil, fmt.Errorf("volume %s: sub-volume %d allocated inode %d, want %d (lockstep broken)",
				a.name, i, ino.ID, id)
		}
		shadows[i] = ino
	}
	if !got {
		return nil, fmt.Errorf("volume %s: no live member to allocate on", a.name)
	}
	for i := range a.subs {
		if shadows[i] == nil {
			// Dead member: an unpersisted placeholder holds the slot so
			// routing and rebuild have a shadow object to work with.
			shadows[i] = &layout.Inode{ID: id, Type: typ, Nlink: 1}
		}
	}
	af := &afile{
		id:      id,
		home:    a.home(id),
		mu:      a.k.NewMutex(fmt.Sprintf("%s.f%d", a.name, id)),
		shadows: shadows,
	}
	// A file born while a replacement is attached is fully written
	// there from its first block; nothing needs rebuilding.
	af.rebuilt.Store(a.attachIdx.Load() >= 0)
	if a.arrayOwned() {
		c := af.home
		if a.red != nil {
			if lc := a.carrierFor(af.home); lc >= 0 {
				c = lc
			}
		}
		h := shadows[c]
		af.global = &layout.Inode{
			ID: id, Type: h.Type, Nlink: h.Nlink, Mode: h.Mode,
			Version: h.Version, MTime: h.MTime, CTime: h.CTime,
		}
	} else {
		af.global = shadows[af.home]
	}
	a.files[id] = af
	return af, nil
}

// lookup returns the per-file state for an inode the front-end
// holds, or nil.
func (a *Array) lookup(t sched.Task, id core.FileID) *afile {
	a.mu.Lock(t)
	af := a.files[id]
	a.mu.Unlock(t)
	return af
}

// GetInode returns the global inode, loading the per-sub shadows
// from a real array on first access after a remount.
func (a *Array) GetInode(t sched.Task, id core.FileID) (*layout.Inode, error) {
	if a.single != nil {
		return a.single.GetInode(t, id)
	}
	a.mu.Lock(t)
	defer a.mu.Unlock(t)
	if af := a.files[id]; af != nil {
		return af.global, nil
	}
	home := a.home(id)
	carrier := home
	if a.red != nil {
		if lc := a.carrierFor(home); lc >= 0 {
			carrier = lc
		}
	}
	h, err := a.sub(carrier).GetInode(t, id)
	if err != nil {
		return nil, err
	}
	af := &afile{
		id:      id,
		home:    home,
		mu:      a.k.NewMutex(fmt.Sprintf("%s.f%d", a.name, id)),
		shadows: make([]*layout.Inode, len(a.subs)),
	}
	af.shadows[carrier] = h
	if a.arrayOwned() {
		for i := range a.subs {
			if i == carrier {
				continue
			}
			if a.red != nil && !a.writeAlive(i) {
				// Dead member: placeholder shadow; reads reconstruct.
				af.shadows[i] = &layout.Inode{ID: id, Type: h.Type, Nlink: 1}
				continue
			}
			s, err := a.sub(i).GetInode(t, id)
			if err != nil {
				return nil, fmt.Errorf("volume %s: sub %d shadow of inode %d: %w", a.name, i, id, err)
			}
			af.shadows[i] = s
		}
		// The carrier shadow's size field carries the global size
		// (striped: the home; redundant: home and its successor).
		af.global = &layout.Inode{
			ID: id, Type: h.Type, Size: h.Size, Nlink: h.Nlink, Mode: h.Mode,
			Version: h.Version, MTime: h.MTime, CTime: h.CTime, ATime: h.ATime,
		}
	} else {
		af.global = h
	}
	a.files[id] = af
	return af.global, nil
}

// UpdateInode records changed meta-data on the file's home
// sub-volume, which persists it.
func (a *Array) UpdateInode(t sched.Task, ino *layout.Inode) error {
	if a.single != nil {
		return a.single.UpdateInode(t, ino)
	}
	af := a.lookup(t, ino.ID)
	if af == nil {
		return core.ErrStale
	}
	if !a.arrayOwned() {
		return a.subs[af.home].UpdateInode(t, ino)
	}
	// Snapshot the front inode's scalars under its own publication
	// lock (af.mu): mutateIno-routed writers hold that lock, not the
	// member locks the shadow closures below run under.
	var snap layout.Inode
	a.WithInode(t, ino, func() {
		snap.Type, snap.Nlink, snap.Mode = ino.Type, ino.Nlink, ino.Mode
		snap.MTime, snap.CTime, snap.ATime = ino.MTime, ino.CTime, ino.ATime
	})
	if a.red != nil {
		// Metadata rides on both carriers so it survives either.
		for _, s := range []int{af.home, (af.home + 1) % len(a.subs)} {
			if !a.writeAlive(s) {
				continue
			}
			h := af.shadows[s]
			a.mutateShadow(t, s, h, func() {
				h.Type, h.Nlink, h.Mode = snap.Type, snap.Nlink, snap.Mode
				h.MTime, h.CTime, h.ATime = snap.MTime, snap.CTime, snap.ATime
			})
		}
		// The mirror helpers expect af.mu held (it publishes the
		// global size); the WithInode snapshot above already released
		// it, so take it here — af.mu before member locks, the order
		// every write path uses.
		af.mu.Lock(t)
		err := a.mirrorCarrierSizes(t, af)
		af.mu.Unlock(t)
		if err != nil {
			return err
		}
		for _, s := range []int{af.home, (af.home + 1) % len(a.subs)} {
			if !a.writeAlive(s) {
				continue
			}
			if err := a.sub(s).UpdateInode(t, af.shadows[s]); err != nil {
				return err
			}
		}
		return nil
	}
	h := af.shadows[af.home]
	a.mutateShadow(t, af.home, h, func() {
		h.Type, h.Nlink, h.Mode = snap.Type, snap.Nlink, snap.Mode
		h.MTime, h.CTime, h.ATime = snap.MTime, snap.CTime, snap.ATime
	})
	// The global size rides in the home shadow; see mirrorHomeSize
	// (which expects af.mu, its publication lock, held).
	af.mu.Lock(t)
	err := a.mirrorHomeSize(t, af)
	af.mu.Unlock(t)
	if err != nil {
		return err
	}
	return a.subs[af.home].UpdateInode(t, h)
}

// mutateShadow applies scalar field updates to a member's shadow
// inode under that member's inode lock on the real kernel, where the
// member's segment packer may be encoding the shadow concurrently —
// the fsys mutateIno publication rule pushed down a layer. The
// virtual kernel is cooperative: direct call, simulated schedules
// untouched.
func (a *Array) mutateShadow(t sched.Task, s int, h *layout.Inode, fn func()) {
	if il, ok := a.sub(s).(layout.InodeLocker); ok && !a.k.Virtual() {
		il.WithInode(t, h, fn)
		return
	}
	fn()
}

// FreeInode removes the file from every sub-volume in lockstep.
func (a *Array) FreeInode(t sched.Task, id core.FileID) error {
	if a.single != nil {
		return a.single.FreeInode(t, id)
	}
	af := a.lookup(t, id)
	if af != nil {
		af.mu.Lock(t)
		defer af.mu.Unlock(t)
	}
	home := a.home(id)
	var homeErr, otherErr error
	for i := range a.subs {
		if !a.writeAlive(i) {
			continue // dead member: nothing persisted there to free
		}
		err := a.sub(i).FreeInode(t, id)
		switch {
		case i == home:
			homeErr = err
		case err != nil && !errors.Is(err, core.ErrNotFound) && otherErr == nil:
			otherErr = err
		}
	}
	a.mu.Lock(t)
	delete(a.files, id)
	a.mu.Unlock(t)
	if homeErr != nil {
		return homeErr
	}
	return otherErr
}

// ReadBlock routes a file-block read to the sub-volume holding it.
func (a *Array) ReadBlock(t sched.Task, ino *layout.Inode, blk core.BlockNo, data []byte) error {
	if a.single != nil {
		return a.single.ReadBlock(t, ino, blk, data)
	}
	af := a.lookup(t, ino.ID)
	if af == nil {
		return core.ErrStale
	}
	if a.red != nil {
		return a.readRedundant(t, af, blk, data)
	}
	s, lb := af.home, blk
	if a.striped {
		s, lb = a.stripe.locate(af.home, blk)
	}
	a.reads.Add(s, 1)
	return a.subs[s].ReadBlock(t, af.shadows[s], lb, data)
}

// ReadRun routes a clustered read to the sub-volume holding the
// run's first block. Striped placement splits runs at stripe-chunk
// boundaries — within a chunk the global and local blocks advance in
// lockstep, so the member's own run discovery sees the contiguity —
// and the caller continues on the next member with its next call.
func (a *Array) ReadRun(t sched.Task, ino *layout.Inode, blk core.BlockNo, n int, data []byte) (int, error) {
	if a.single != nil {
		return a.single.ReadRun(t, ino, blk, n, data)
	}
	af := a.lookup(t, ino.ID)
	if af == nil {
		return 0, core.ErrStale
	}
	if a.red != nil {
		// Clamp the run at the chunk boundary (within a chunk global
		// and local blocks advance in lockstep), route to the member
		// holding the data copy; a dead member degrades to block-wise
		// reconstruction.
		g := a.red
		if rem := g.w - int(int64(blk)%int64(g.w)); n > rem {
			n = rem
		}
		s, lb := g.primaryLoc(af.home, blk)
		if g.parity {
			s, lb = g.dataLoc(af.home, blk)
		}
		if a.readAlive(af, s) {
			got, err := a.sub(s).ReadRun(t, af.shadows[s], lb, n, data)
			if got > 0 {
				a.reads.Add(s, int64(got))
			}
			if err == nil || !a.noteDeadErr(s, err) {
				return got, err
			}
		}
		if err := a.readRedundant(t, af, blk, firstBlock(data)); err != nil {
			return 0, err
		}
		return 1, nil
	}
	s, lb := af.home, blk
	if a.striped {
		s, lb = a.stripe.locate(af.home, blk)
		if rem := a.stripe.w - int(int64(blk)%int64(a.stripe.w)); n > rem {
			n = rem
		}
	}
	got, err := a.subs[s].ReadRun(t, af.shadows[s], lb, n, data)
	if got > 0 {
		a.reads.Add(s, int64(got))
	}
	return got, err
}

// ReadRunVec implements layout.VecRunReader with ReadRun's exact
// routing — stripe- and redundancy-chunk clamping, dead-member
// degradation — but scattering into per-block buffers. A member
// without a vectored path degrades to a single-block read into
// bufs[0] (still no staging copy).
func (a *Array) ReadRunVec(t sched.Task, ino *layout.Inode, blk core.BlockNo, n int, bufs [][]byte) (int, error) {
	if n > len(bufs) {
		n = len(bufs)
	}
	if n < 1 {
		n = 1
	}
	if a.single != nil {
		if got, ok, err := layout.ReadRunVec(t, a.single, ino, blk, n, bufs); ok {
			return got, err
		}
		return 1, a.single.ReadBlock(t, ino, blk, bufs[0][:core.BlockSize])
	}
	af := a.lookup(t, ino.ID)
	if af == nil {
		return 0, core.ErrStale
	}
	if a.red != nil {
		g := a.red
		if rem := g.w - int(int64(blk)%int64(g.w)); n > rem {
			n = rem
		}
		s, lb := g.primaryLoc(af.home, blk)
		if g.parity {
			s, lb = g.dataLoc(af.home, blk)
		}
		if a.readAlive(af, s) {
			got, ok, err := layout.ReadRunVec(t, a.sub(s), af.shadows[s], lb, n, bufs)
			if !ok {
				got, err = 1, a.sub(s).ReadBlock(t, af.shadows[s], lb, bufs[0][:core.BlockSize])
			}
			if got > 0 {
				a.reads.Add(s, int64(got))
			}
			if err == nil || !a.noteDeadErr(s, err) {
				return got, err
			}
		}
		if err := a.readRedundant(t, af, blk, bufs[0][:core.BlockSize]); err != nil {
			return 0, err
		}
		return 1, nil
	}
	s, lb := af.home, blk
	if a.striped {
		s, lb = a.stripe.locate(af.home, blk)
		if rem := a.stripe.w - int(int64(blk)%int64(a.stripe.w)); n > rem {
			n = rem
		}
	}
	got, ok, err := layout.ReadRunVec(t, a.subs[s], af.shadows[s], lb, n, bufs)
	if !ok {
		got, err = 1, a.subs[s].ReadBlock(t, af.shadows[s], lb, bufs[0][:core.BlockSize])
	}
	if got > 0 {
		a.reads.Add(s, int64(got))
	}
	return got, err
}

// firstBlock clips a run buffer to its first block (nil stays nil for
// simulated stacks).
func firstBlock(data []byte) []byte {
	if data == nil {
		return nil
	}
	if len(data) > core.BlockSize {
		return data[:core.BlockSize]
	}
	return data
}

// WriteBlocks splits one file's dirty blocks by target sub-volume
// and hands each its share. In affinity mode the whole batch goes to
// the file's home; striped mode fans the per-member shares out as
// concurrent tasks under the real kernel (the members are
// independent disk stacks), in deterministic member order under the
// virtual one.
func (a *Array) WriteBlocks(t sched.Task, ino *layout.Inode, writes []layout.BlockWrite) error {
	if a.single != nil {
		return a.single.WriteBlocks(t, ino, writes)
	}
	af := a.lookup(t, ino.ID)
	if af == nil {
		return core.ErrStale
	}
	af.mu.Lock(t)
	defer af.mu.Unlock(t)
	if a.red != nil {
		return a.writeRedundant(t, af, writes)
	}
	if !a.striped {
		a.writes.Add(af.home, int64(len(writes)))
		return a.subs[af.home].WriteBlocks(t, af.global, writes)
	}
	per := make([][]layout.BlockWrite, len(a.subs))
	for _, w := range writes {
		s, lb := a.stripe.locate(af.home, w.Blk)
		per[s] = append(per[s], layout.BlockWrite{Blk: lb, Data: w.Data, Size: w.Size})
	}
	writeSub := func(st sched.Task, s int) error {
		// A shadow's size must keep covering its share of the block
		// map: the on-disk inode form decodes BlocksForSize(Size)
		// map entries, and nothing else records a shadow's extent.
		// The home shadow instead carries the global size (below),
		// which covers its share by construction. Size changes go
		// through the sub-layout's Truncate — a growing truncate
		// frees nothing — so the field is written under the same
		// lock Sync reads it with.
		if s != af.home {
			if end := localExtent(per[s]); end > af.shadows[s].Size {
				if err := a.subs[s].Truncate(st, af.shadows[s], end); err != nil {
					return fmt.Errorf("volume %s: grow sub %d shadow: %w", a.name, s, err)
				}
			}
		}
		a.writes.Add(s, int64(len(per[s])))
		if err := a.subs[s].WriteBlocks(st, af.shadows[s], per[s]); err != nil {
			return fmt.Errorf("volume %s: write sub %d: %w", a.name, s, err)
		}
		return nil
	}
	var targets []int
	for s := range a.subs {
		if len(per[s]) > 0 {
			targets = append(targets, s)
		}
	}
	if a.k.Virtual() || len(targets) <= 1 {
		for _, s := range targets {
			if err := writeSub(t, s); err != nil {
				return err
			}
		}
		return a.mirrorHomeSize(t, af)
	}
	// Real kernel: the per-member writes ride the striped-sync
	// machinery — one task per member, first error in member order.
	errs := make([]error, len(targets))
	done := a.k.NewEvent(a.name + ".writefan")
	for i, s := range targets {
		i, s := i, s
		a.k.Go(fmt.Sprintf("%s.write.d%d", a.name, s), func(st sched.Task) {
			errs[i] = writeSub(st, s)
			done.Signal()
		})
	}
	for range targets {
		done.Wait(t)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return a.mirrorHomeSize(t, af)
}

// mirrorHomeSize records the global size in the home shadow (via the
// home sub-layout's Truncate, so the write happens under its lock)
// — that is what a real-mode remount recovers the size from.
func (a *Array) mirrorHomeSize(t sched.Task, af *afile) error {
	// Same locking discipline as mirrorCarrierSizes: caller holds
	// af.mu (the global size's publication lock); the shadow's size
	// is snapshotted under the home member's inode lock.
	size := af.global.Size
	h := af.shadows[af.home]
	cur := int64(-1)
	a.mutateShadow(t, af.home, h, func() { cur = h.Size })
	if cur == size {
		return nil
	}
	if err := a.subs[af.home].Truncate(t, h, size); err != nil {
		return fmt.Errorf("volume %s: mirror size on home %d: %w", a.name, af.home, err)
	}
	return nil
}

// localExtent is the block-granular extent of one sub-volume's write
// batch: one past the highest local block, in bytes.
func localExtent(ws []layout.BlockWrite) int64 {
	var end int64
	for _, w := range ws {
		if e := (int64(w.Blk) + 1) * core.BlockSize; e > end {
			end = e
		}
	}
	return end
}

// Truncate releases blocks beyond newSize on every sub-volume.
func (a *Array) Truncate(t sched.Task, ino *layout.Inode, newSize int64) error {
	if a.single != nil {
		return a.single.Truncate(t, ino, newSize)
	}
	af := a.lookup(t, ino.ID)
	if af == nil {
		return core.ErrStale
	}
	af.mu.Lock(t)
	defer af.mu.Unlock(t)
	if !a.arrayOwned() {
		return a.subs[af.home].Truncate(t, af.global, newSize)
	}
	keep := layout.BlocksForSize(newSize)
	for s := range a.subs {
		if a.red != nil && !a.writeAlive(s) {
			continue
		}
		var lk int64
		if a.red != nil {
			lk = a.red.localBlocks(af.home, s, keep)
		} else {
			lk = a.stripe.localBlocks(af.home, s, keep)
		}
		if err := a.sub(s).Truncate(t, af.shadows[s], lk*core.BlockSize); err != nil {
			return fmt.Errorf("volume %s: truncate sub %d: %w", a.name, s, err)
		}
	}
	af.global.Size = newSize
	af.global.MTime = int64(a.k.Now())
	// Re-truncate the carriers to the global size: their local maps
	// are already trimmed, so this only records the size (see
	// mirrorHomeSize / mirrorCarrierSizes).
	if a.red != nil {
		return a.mirrorCarrierSizes(t, af)
	}
	return a.mirrorHomeSize(t, af)
}

// PlaceExisting spreads a preexisting file's educated-guess
// placement over the sub-volumes the same way real writes would.
func (a *Array) PlaceExisting(t sched.Task, ino *layout.Inode, size int64) error {
	if a.single != nil {
		return a.single.PlaceExisting(t, ino, size)
	}
	if !a.cfg.Simulated {
		return layout.ErrNoPlaceExisting
	}
	af := a.lookup(t, ino.ID)
	if af == nil {
		return core.ErrStale
	}
	af.mu.Lock(t)
	defer af.mu.Unlock(t)
	if !a.arrayOwned() {
		return a.subs[af.home].PlaceExisting(t, af.global, size)
	}
	total := layout.BlocksForSize(size)
	for s := range a.subs {
		if a.red != nil && !a.writeAlive(s) {
			continue
		}
		var lk int64
		if a.red != nil {
			lk = a.red.localBlocks(af.home, s, total)
		} else {
			lk = a.stripe.localBlocks(af.home, s, total)
		}
		if lk == 0 {
			continue
		}
		if err := a.sub(s).PlaceExisting(t, af.shadows[s], lk*core.BlockSize); err != nil {
			return err
		}
	}
	af.global.Size = size
	return nil
}

// FreeBlocks reports the array's aggregate remaining capacity.
func (a *Array) FreeBlocks() int64 {
	if a.single != nil {
		return a.single.FreeBlocks()
	}
	var sum int64
	for _, sub := range a.subs {
		sum += sub.FreeBlocks()
	}
	return sum
}

// Stats registers every sub-volume's sources plus the array-level
// merged counters.
func (a *Array) Stats(set *stats.Set) {
	if a.single != nil {
		a.single.Stats(set)
		return
	}
	for _, sub := range a.subs {
		sub.Stats(set)
	}
	set.Add(a.reads)
	set.Add(a.writes)
	set.Add(a.syncs)
	if a.degraded != nil {
		set.Add(a.degraded)
	}
}

// DegradedReads returns the count of reads served by reconstruction
// (0 for non-redundant placements).
func (a *Array) DegradedReads() int64 {
	if a.degraded == nil {
		return 0
	}
	return a.degraded.Value()
}

// RebuildProgress reports the online rebuild's progress: files copied
// and the total in the current pass (both zero when no rebuild ran).
func (a *Array) RebuildProgress() (done, total int64) {
	return a.rebuildDone.Load(), a.rebuildTotal.Load()
}

// ReadGroup returns the per-member routed-read counters, nil for a
// width-1 passthrough array.
func (a *Array) ReadGroup() *stats.Group { return a.reads }

// WriteGroup returns the per-member routed-write counters, nil for a
// width-1 passthrough array.
func (a *Array) WriteGroup() *stats.Group { return a.writes }

// SyncCounter returns the array-sync counter, nil for a width-1
// passthrough array.
func (a *Array) SyncCounter() *stats.Counter { return a.syncs }

// RoutedBlocks reports the per-sub-volume block counts the array has
// routed so far — the raw material of the per-volume report.
func (a *Array) RoutedBlocks() (reads, writes []int64) {
	if a.single != nil {
		return []int64{0}, []int64{0}
	}
	return a.reads.Values(), a.writes.Values()
}
