package volume

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/sched"
)

// This file is the array-wide crash-recovery pass. The members
// recover independently (LFS roll-forward, FFS repair), but a crash
// can also break the *array's* invariants: the lockstep inode
// allocators drift when the cut lands between per-member operations
// of one fan-out, a file can be allocated on some members only, and
// a striped file's shadow sizes can disagree with the global size
// the home shadow carries. Recover heals all of it and cross-checks
// the per-member geometry labels.

// Recover implements layout.Recoverer for the array: recover every
// member, validate the labels, re-sync the lockstep allocators, roll
// back half-made allocations, and repair the shadow-size invariant
// of striped files. Ends with a full sync so the repairs are
// durable.
func (a *Array) Recover(t sched.Task) (layout.RecoveryStats, error) {
	var st layout.RecoveryStats
	if a.single != nil {
		if rec, ok := a.single.(layout.Recoverer); ok {
			return rec.Recover(t)
		}
		return st, a.single.Mount(t)
	}
	for i := range a.subs {
		if int(a.deadIdx.Load()) == i {
			continue // dead member: rebuild recovers it onto a replacement
		}
		sub := a.sub(i)
		rec, ok := sub.(layout.Recoverer)
		if !ok {
			if err := sub.Mount(t); err != nil {
				return st, fmt.Errorf("volume %s: mount sub %d: %w", a.name, i, err)
			}
			continue
		}
		sst, err := rec.Recover(t)
		if err != nil {
			return st, fmt.Errorf("volume %s: recover sub %d: %w", a.name, i, err)
		}
		st.Add(sst)
	}
	if !a.cfg.Simulated {
		if err := a.readLabel(t); err != nil {
			return st, err
		}
		if err := a.resyncLockstep(t, &st); err != nil {
			return st, err
		}
		if a.striped {
			if err := a.repairShadows(t, &st); err != nil {
				return st, err
			}
		}
		if a.red != nil {
			if err := a.repairRedundant(t, &st); err != nil {
				return st, err
			}
		}
	}
	// Make the repairs durable (and write the labels if the crash
	// predated the first sync).
	return st, a.Sync(t)
}

// GrowSize implements layout.Sizer. In affinity mode the global
// inode is the home member's own, so the growth must happen under
// that member's lock; in striped mode the array owns it and af.mu —
// the lock the home-size mirror reads under — covers it.
func (a *Array) GrowSize(t sched.Task, ino *layout.Inode, size int64) {
	if a.single != nil {
		if sz, ok := a.single.(layout.Sizer); ok {
			sz.GrowSize(t, ino, size)
			return
		}
		if size > ino.Size {
			ino.Size = size
		}
		return
	}
	af := a.lookup(t, ino.ID)
	if af == nil {
		if size > ino.Size {
			ino.Size = size
		}
		return
	}
	if !a.arrayOwned() {
		if sz, ok := a.subs[af.home].(layout.Sizer); ok {
			sz.GrowSize(t, af.global, size)
			return
		}
	}
	af.mu.Lock(t)
	if size > af.global.Size {
		af.global.Size = size
	}
	af.mu.Unlock(t)
}

// WithInode implements layout.InodeLocker with the same routing as
// GrowSize: affinity mode runs fn under the home member's lock (the
// global inode is the member's own), striped mode under af.mu, the
// lock the home-size mirror reads under.
func (a *Array) WithInode(t sched.Task, ino *layout.Inode, fn func()) {
	if a.single != nil {
		if il, ok := a.single.(layout.InodeLocker); ok {
			il.WithInode(t, ino, fn)
			return
		}
		fn()
		return
	}
	af := a.lookup(t, ino.ID)
	if af == nil {
		fn()
		return
	}
	if !a.arrayOwned() {
		if il, ok := a.subs[af.home].(layout.InodeLocker); ok {
			il.WithInode(t, af.global, fn)
			return
		}
	}
	af.mu.Lock(t)
	fn()
	af.mu.Unlock(t)
}

// WriteBarrier implements layout.Barrier: every member that stages
// writes flushes them to stable storage.
func (a *Array) WriteBarrier(t sched.Task) error {
	if a.single != nil {
		if b, ok := a.single.(layout.Barrier); ok {
			return b.WriteBarrier(t)
		}
		return nil
	}
	s := a.parityBarrierStart()
	for i := range a.subs {
		if !a.writeAlive(i) {
			continue
		}
		if b, ok := a.sub(i).(layout.Barrier); ok {
			if err := b.WriteBarrier(t); err != nil {
				// Lazy fault detection, like the read and write paths: a
				// member whose log push dies at the hardware is marked
				// dead and skipped — its staged writes die with it, and
				// the copies/parity on the surviving members (whose own
				// barriers still run) carry the data until the rebuild.
				if a.noteDeadErr(i, err) {
					continue
				}
				return fmt.Errorf("volume %s: barrier sub %d: %w", a.name, i, err)
			}
		}
	}
	// Every member committed the writes it held when the barrier
	// began, so partial-parity records armed before it are fully on
	// the media — on every member — and can retire.
	a.parityBarrierDone(s)
	return nil
}

// DurableSeq implements layout.DurableWatermark for the array: the
// minimum over the members, so the watermark only advances when
// every member's covering checkpoint is durable. Members without a
// watermark contribute nothing (the array then reports zero, and
// retirement falls back to trusting Sync's success).
func (a *Array) DurableSeq(t sched.Task) uint64 {
	if a.single != nil {
		if w, ok := a.single.(layout.DurableWatermark); ok {
			return w.DurableSeq(t)
		}
		return 0
	}
	var minSeq uint64
	first := true
	for i := range a.subs {
		if !a.writeAlive(i) {
			// A dead member can never checkpoint again; waiting on it
			// would stall intent retirement forever. The survivors'
			// durability is what the redundant array's data rests on.
			continue
		}
		w, ok := a.sub(i).(layout.DurableWatermark)
		if !ok {
			return 0
		}
		s := w.DurableSeq(t)
		if first || s < minSeq {
			minSeq = s
			first = false
		}
	}
	return minSeq
}

// resyncLockstep restores the invariant that every live inode exists
// on the members that need it and that sequential allocators agree.
func (a *Array) resyncLockstep(t sched.Task, st *layout.RecoveryStats) error {
	dead := int(a.deadIdx.Load())
	present := make([]map[core.FileID]bool, len(a.subs))
	for i := range a.subs {
		if i == dead {
			continue // dead member: nothing to enumerate (nil entry)
		}
		en, ok := a.sub(i).(layout.InodeEnumerator)
		if !ok {
			return nil // layout without enumeration: nothing to repair
		}
		present[i] = make(map[core.FileID]bool)
		for _, id := range en.LiveInodes(t) {
			present[i][id] = true
		}
	}
	union := map[core.FileID]bool{}
	for _, p := range present {
		for id := range p {
			union[id] = true
		}
	}
	ids := make([]core.FileID, 0, len(union))
	for id := range union {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	for _, id := range ids {
		if id == core.RootFile || id == labelFileID {
			// Array metadata: must exist everywhere or the mount/label
			// checks would have failed already.
			continue
		}
		home := a.home(id)
		missingAny, missingHome := false, false
		for i := range a.subs {
			if i == dead {
				continue // the rebuild recreates its shadows
			}
			if !present[i][id] {
				missingAny = true
				if i == home {
					missingHome = true
				}
			}
		}
		// A file is unusable when its home copy is gone (affinity: all
		// data lives there) or, array-owned, when any member's share is
		// gone. Roll the half-made allocation back everywhere.
		if (a.arrayOwned() && missingAny) || (!a.arrayOwned() && missingHome) {
			for i := range a.subs {
				if !present[i][id] {
					continue
				}
				if err := a.sub(i).FreeInode(t, id); err != nil && !errors.Is(err, core.ErrNotFound) {
					return fmt.Errorf("volume %s: roll back inode %d on sub %d: %w", a.name, id, i, err)
				}
			}
			st.Repairs = append(st.Repairs,
				fmt.Sprintf("rolled back half-allocated inode %d (lockstep broken by the crash)", id))
			continue
		}
		if missingAny {
			// Affinity with intact home: non-home shadows are empty
			// bookkeeping, their absence is tolerated by FreeInode.
			st.Repairs = append(st.Repairs,
				fmt.Sprintf("inode %d missing a non-home shadow; kept (home copy intact)", id))
		}
	}

	// Align sequential allocation cursors to the furthest member so
	// lockstep allocation resumes identically everywhere.
	var maxCur uint64
	nCur, alive := 0, 0
	for i := range a.subs {
		if i == dead {
			continue
		}
		alive++
		if ac, ok := a.sub(i).(layout.AllocCursor); ok {
			if c := ac.InodeCursor(t); c > maxCur {
				maxCur = c
			}
			nCur++
		}
	}
	if nCur == alive && nCur > 0 {
		moved := false
		for i := range a.subs {
			if i == dead {
				continue
			}
			ac := a.sub(i).(layout.AllocCursor)
			if ac.InodeCursor(t) != maxCur {
				moved = true
			}
			ac.SetInodeCursor(t, maxCur)
		}
		if moved {
			st.Repairs = append(st.Repairs,
				fmt.Sprintf("re-synced lockstep inode cursors to %d", maxCur))
		}
	}
	return nil
}

// repairShadows restores the striped-mode invariant: the home shadow
// carries the global size, and every member's shadow covers exactly
// its share of it. A member that lost rolled-forward tail data clamps
// the global size down to the largest fully-backed extent; shadows
// reaching beyond the global size are trimmed, freeing orphaned
// stripes.
func (a *Array) repairShadows(t sched.Task, st *layout.RecoveryStats) error {
	en, ok := a.subs[0].(layout.InodeEnumerator)
	if !ok {
		return nil
	}
	for _, id := range en.LiveInodes(t) {
		if id == core.RootFile || id == labelFileID {
			continue
		}
		home := a.home(id)
		shadows := make([]*layout.Inode, len(a.subs))
		missing := false
		for i, sub := range a.subs {
			ino, err := sub.GetInode(t, id)
			if err != nil {
				missing = true // rolled back above, or directory-only
				break
			}
			shadows[i] = ino
		}
		if missing {
			continue
		}
		hsize := shadows[home].Size
		total := layout.BlocksForSize(hsize)
		covered := total
		for covered > 0 {
			ok := true
			for s := range a.subs {
				if a.stripe.localBlocks(home, s, covered)*core.BlockSize > shadows[s].Size {
					ok = false
					break
				}
			}
			if ok {
				break
			}
			covered--
		}
		newSize := hsize
		if covered < total {
			newSize = covered * core.BlockSize
			st.Repairs = append(st.Repairs, fmt.Sprintf(
				"inode %d: global size %d not fully backed, clamped to %d (a member lost its stripe tail)",
				id, hsize, newSize))
		}
		keep := layout.BlocksForSize(newSize)
		for s, sub := range a.subs {
			if s == home {
				continue
			}
			need := a.stripe.localBlocks(home, s, keep) * core.BlockSize
			if shadows[s].Size != need {
				if shadows[s].Size > need {
					st.Repairs = append(st.Repairs, fmt.Sprintf(
						"inode %d: trimmed member %d shadow from %d to %d bytes (orphaned stripes)",
						id, s, shadows[s].Size, need))
				}
				if err := sub.Truncate(t, shadows[s], need); err != nil {
					return fmt.Errorf("volume %s: repair shadow of inode %d on sub %d: %w", a.name, id, s, err)
				}
				if err := sub.UpdateInode(t, shadows[s]); err != nil {
					return err
				}
			}
		}
		if newSize != hsize {
			if err := a.subs[home].Truncate(t, shadows[home], newSize); err != nil {
				return fmt.Errorf("volume %s: clamp inode %d global size: %w", a.name, id, err)
			}
			if err := a.subs[home].UpdateInode(t, shadows[home]); err != nil {
				return err
			}
		}
	}
	return nil
}
