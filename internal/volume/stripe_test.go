package volume

import (
	"testing"

	"repro/internal/core"
)

// TestStripeGeometry checks the striping math exhaustively over
// small arrays: every block of a file lands on exactly one
// sub-volume, local block numbers are dense per sub-volume, and
// localBlocks reports exactly the share locate hands out.
func TestStripeGeometry(t *testing.T) {
	for n := 1; n <= 5; n++ {
		for w := 1; w <= 9; w += 4 {
			g := geom{n: n, w: w}
			for home := 0; home < n; home++ {
				for total := int64(0); total <= int64(3*n*w+3); total++ {
					// Count the blocks each sub receives and track the
					// highest local index.
					counts := make([]int64, n)
					maxLocal := make([]int64, n)
					for i := range maxLocal {
						maxLocal[i] = -1
					}
					for b := int64(0); b < total; b++ {
						s, lb := g.locate(home, core.BlockNo(b))
						if s < 0 || s >= n {
							t.Fatalf("n=%d w=%d home=%d blk=%d: sub %d out of range", n, w, home, b, s)
						}
						counts[s]++
						if int64(lb) > maxLocal[s] {
							maxLocal[s] = int64(lb)
						}
					}
					var sum int64
					for s := 0; s < n; s++ {
						lk := g.localBlocks(home, s, total)
						sum += lk
						if lk != counts[s] {
							t.Fatalf("n=%d w=%d home=%d total=%d sub=%d: localBlocks=%d, locate hands out %d",
								n, w, home, total, s, lk, counts[s])
						}
						if maxLocal[s]+1 != lk {
							t.Fatalf("n=%d w=%d home=%d total=%d sub=%d: share not dense: max local %d, count %d",
								n, w, home, total, s, maxLocal[s], lk)
						}
					}
					if sum != total {
						t.Fatalf("n=%d w=%d home=%d total=%d: shares sum to %d", n, w, home, total, sum)
					}
				}
			}
		}
	}
}

// TestStripeNoCollision verifies distinct global blocks never map to
// the same (sub, local) pair.
func TestStripeNoCollision(t *testing.T) {
	g := geom{n: 3, w: 4}
	seen := map[[2]int64]int64{}
	for b := int64(0); b < 500; b++ {
		s, lb := g.locate(1, core.BlockNo(b))
		key := [2]int64{int64(s), int64(lb)}
		if prev, dup := seen[key]; dup {
			t.Fatalf("blocks %d and %d both map to sub %d local %d", prev, b, s, lb)
		}
		seen[key] = b
	}
}
