package volume

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/layout"
	"repro/internal/lfs"
	"repro/internal/sched"
)

// newSpareStack builds an idle replacement member stack over its own
// fresh driver, the way a supervisor pre-provisions one. The disk
// index is offset past the members so fault plans never confuse a
// spare with the member it replaces.
func newSpareStack(k sched.Kernel, width, slot int) (device.Driver, layout.Layout) {
	drv := device.NewMemDriver(k, fmt.Sprintf("spare%d", slot), rigBlocks, nil)
	part := layout.NewPartition(drv, width+slot, 0, rigBlocks, false)
	return drv, lfs.New(k, fmt.Sprintf("s%d", slot), part, lfs.Config{SegBlocks: 32})
}

// TestMaintenanceGateExclusion pins the CAS gate deterministically: a
// held gate refuses Rebuild, Scrub and PromoteSpare with ErrBusy, the
// refused promotion returns its spare to the pool and counts the
// refusal, and releasing the gate lets the promotion through.
func TestMaintenanceGateExclusion(t *testing.T) {
	k := sched.NewReal(1)
	r := newRig(t, k, nil, 3, Config{Placement: PlacementMirrored, StripeBlocks: 2})
	const dead = 1
	_, spare := newSpareStack(k, 3, 0)
	r.do(t, func(tk sched.Task) error {
		r.arr.Format(tk)
		r.arr.Mount(tk)
		if _, err := r.arr.AllocInode(tk, core.TypeDirectory); err != nil {
			return err
		}
		ino, _ := writeFile(t, tk, r.arr, 9, core.BlockSize)
		if err := r.arr.Sync(tk); err != nil {
			return err
		}
		r.arr.AttachSpare(spare)
		if err := r.arr.KillMember(dead); err != nil {
			return err
		}

		// Hold the gate as a concurrent scrub would.
		if !r.arr.maint.CompareAndSwap(maintIdle, maintScrub) {
			t.Fatal("gate not idle at rest")
		}
		if m := r.arr.Maintenance(); m != "scrub" {
			t.Fatalf("Maintenance() = %q with held gate, want scrub", m)
		}
		_, repl := newSpareStack(k, 3, 9)
		if err := r.arr.Rebuild(tk, repl); !errors.Is(err, ErrBusy) {
			t.Fatalf("rebuild through held gate: %v, want ErrBusy", err)
		}
		if _, err := r.arr.Scrub(tk, false); !errors.Is(err, ErrBusy) {
			t.Fatalf("scrub through held gate: %v, want ErrBusy", err)
		}
		if _, err := r.arr.PromoteSpare(tk); !errors.Is(err, ErrBusy) {
			t.Fatalf("promote through held gate: %v, want ErrBusy", err)
		}
		if n := r.arr.SpareCount(); n != 1 {
			t.Fatalf("refused promotion consumed the spare: %d idle, want 1", n)
		}
		if n := r.arr.SpareRefusals(); n != 1 {
			t.Fatalf("refusals = %d, want 1", n)
		}
		if o := r.arr.Origins()[dead]; o != -1 {
			t.Fatalf("refused promotion left origin %d, want -1", o)
		}
		r.arr.maint.Store(maintIdle)

		slot, err := r.arr.PromoteSpare(tk)
		if err != nil {
			return err
		}
		if slot != 0 {
			t.Fatalf("promoted slot %d, want 0", slot)
		}
		if r.arr.Degraded() {
			t.Fatal("array degraded after promotion")
		}
		if o := r.arr.Origins()[dead]; o != 0 {
			t.Fatalf("origin %d after promotion, want 0", o)
		}
		if n := r.arr.SparePromotions(); n != 1 {
			t.Fatalf("promotions = %d, want 1", n)
		}
		checkFile(t, tk, r.arr, ino, 9)
		return nil
	})
}

// TestMaintenanceRaceHammer races Rebuild, Scrub and KillMember under
// -race: every loser refuses with ErrBusy or the single-fault
// rejection (never corruption), a second kill only lands once the
// rebuild has fully completed, and the array ends healthy with the
// data intact.
func TestMaintenanceRaceHammer(t *testing.T) {
	k := sched.NewReal(4)
	r := newRig(t, k, nil, 3, Config{Placement: PlacementMirrored, StripeBlocks: 2})
	const dead = 1
	const other = 2
	const nblocks = 96
	var ino *layout.Inode
	r.do(t, func(tk sched.Task) error {
		r.arr.Format(tk)
		r.arr.Mount(tk)
		if _, err := r.arr.AllocInode(tk, core.TypeDirectory); err != nil {
			return err
		}
		ino, _ = writeFile(t, tk, r.arr, nblocks, core.BlockSize)
		if err := r.arr.Sync(tk); err != nil {
			return err
		}
		return r.arr.KillMember(dead)
	})
	r.arr.SetRebuildBudget(200 * time.Microsecond)

	var wg sync.WaitGroup
	var mu sync.Mutex
	var fatal error
	fail := func(format string, args ...any) {
		mu.Lock()
		if fatal == nil {
			fatal = fmt.Errorf(format, args...)
		}
		mu.Unlock()
	}
	rebuilt := make(chan struct{})

	// The rebuilder: retries through scrubbers holding the gate.
	wg.Add(1)
	k.Go("rebuild", func(tk sched.Task) {
		defer wg.Done()
		defer close(rebuilt)
		_, repl := newSpareStack(k, 3, 0)
		for {
			err := r.arr.Rebuild(tk, repl)
			if err == nil {
				return
			}
			if !errors.Is(err, ErrBusy) {
				fail("rebuild: %v", err)
				return
			}
			tk.Sleep(100 * time.Microsecond)
		}
	})

	// Scrubbers: each pass either runs clean or refuses with ErrBusy.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		k.Go(fmt.Sprintf("scrub%d", i), func(tk sched.Task) {
			defer wg.Done()
			for {
				select {
				case <-rebuilt:
					return
				default:
				}
				if _, err := r.arr.Scrub(tk, false); err != nil && !errors.Is(err, ErrBusy) {
					fail("scrub: %v", err)
					return
				}
				tk.Sleep(50 * time.Microsecond)
			}
		})
	}

	// The second-fault prober: killing another member must be refused
	// until the rebuild has fully completed (single-fault model).
	wg.Add(1)
	k.Go("killer", func(tk sched.Task) {
		defer wg.Done()
		for {
			if err := r.arr.KillMember(other); err == nil {
				if done, tot := r.arr.RebuildProgress(); tot == 0 || done != tot {
					fail("second kill landed mid-rebuild (%d/%d copied)", done, tot)
				}
				return
			} else if !strings.Contains(err.Error(), "dead") && !strings.Contains(err.Error(), "single") {
				fail("kill refused with unexpected error: %v", err)
				return
			}
			select {
			case <-rebuilt:
				return
			default:
				tk.Sleep(50 * time.Microsecond)
			}
		}
	})

	wg.Wait()
	if fatal != nil {
		t.Fatal(fatal)
	}

	r.do(t, func(tk sched.Task) error {
		// The prober may have legitimately killed `other` after the
		// rebuild completed; restore before the final verification.
		if r.arr.Degraded() {
			_, repl := newSpareStack(k, 3, 1)
			if err := r.arr.Rebuild(tk, repl); err != nil {
				return err
			}
		}
		st, err := r.arr.Scrub(tk, false)
		if err != nil {
			return err
		}
		if st.Mismatches != 0 || st.Skipped != 0 {
			t.Fatalf("final scrub: %+v", st)
		}
		checkFile(t, tk, r.arr, ino, nblocks)
		return nil
	})
}

// TestSparePoolLifecycle runs the pool dry: two sequential deaths
// promote the two attached spares (lineage recorded and persisted
// through the member labels), a third death finds the pool empty and
// is refused — with the array still serving degraded — and a manual
// rebuild restores health.
func TestSparePoolLifecycle(t *testing.T) {
	k := sched.NewReal(1)
	r := newRig(t, k, nil, 3, Config{Placement: PlacementMirrored, StripeBlocks: 2})
	const nblocks = 11
	spareDrvs := make([]device.Driver, 2)
	var replDrv device.Driver
	var ino *layout.Inode
	r.do(t, func(tk sched.Task) error {
		r.arr.Format(tk)
		r.arr.Mount(tk)
		if _, err := r.arr.AllocInode(tk, core.TypeDirectory); err != nil {
			return err
		}
		ino, _ = writeFile(t, tk, r.arr, nblocks, core.BlockSize)
		if err := r.arr.Sync(tk); err != nil {
			return err
		}
		for j := 0; j < 2; j++ {
			drv, spare := newSpareStack(k, 3, j)
			spareDrvs[j] = drv
			if s := r.arr.AttachSpare(spare); s != j {
				t.Fatalf("spare %d attached at slot %d", j, s)
			}
		}

		// Death 1: member 1 → spare slot 0.
		if err := r.arr.KillMember(1); err != nil {
			return err
		}
		if slot, err := r.arr.PromoteSpare(tk); err != nil || slot != 0 {
			t.Fatalf("first promotion: slot %d, err %v", slot, err)
		}
		// Death 2: member 2 → spare slot 1.
		if err := r.arr.KillMember(2); err != nil {
			return err
		}
		if slot, err := r.arr.PromoteSpare(tk); err != nil || slot != 1 {
			t.Fatalf("second promotion: slot %d, err %v", slot, err)
		}
		if got := r.arr.Origins(); got[0] != -1 || got[1] != 0 || got[2] != 1 {
			t.Fatalf("origins %v, want [-1 0 1]", got)
		}
		if n := r.arr.SpareCount(); n != 0 {
			t.Fatalf("pool has %d idle after two promotions, want 0", n)
		}

		// Death 3: the pool is dry. The refusal is clean and counted,
		// and the array keeps serving degraded.
		if err := r.arr.KillMember(0); err != nil {
			return err
		}
		if _, err := r.arr.PromoteSpare(tk); !errors.Is(err, ErrNoSpare) {
			t.Fatalf("promotion from empty pool: %v, want ErrNoSpare", err)
		}
		if n := r.arr.SpareRefusals(); n != 1 {
			t.Fatalf("refusals = %d, want 1", n)
		}
		checkFile(t, tk, r.arr, ino, nblocks)

		// Manual repair closes the incident.
		var repl layout.Layout
		replDrv, repl = newSpareStack(k, 3, 7)
		if err := r.arr.Rebuild(tk, repl); err != nil {
			return err
		}
		if r.arr.Degraded() {
			t.Fatal("degraded after manual rebuild")
		}
		checkFile(t, tk, r.arr, ino, nblocks)
		return r.arr.Sync(tk)
	})

	// Lineage survives a remount: the member labels carry the origin.
	drvs2 := []device.Driver{replDrv, spareDrvs[0], spareDrvs[1]}
	r2 := newRig(t, k, drvs2, 3, Config{Placement: PlacementMirrored, StripeBlocks: 2})
	r2.do(t, func(tk sched.Task) error {
		if err := r2.arr.Mount(tk); err != nil {
			return err
		}
		if got := r2.arr.Origins(); got[0] != -1 || got[1] != 0 || got[2] != 1 {
			t.Fatalf("origins after remount %v, want [-1 0 1]", got)
		}
		got, err := r2.arr.GetInode(tk, ino.ID)
		if err != nil {
			return err
		}
		checkFile(t, tk, r2.arr, got, nblocks)
		return nil
	})
}
