package volume

// The degraded-parity write hole, and the battery-backed record that
// closes it. A degraded column update that read-modify-writes the
// parity folds the dead member's implied content forward through
// parity_old; if a power cut lands some of the column's member writes
// but not others, parity and data disagree and the dead member's
// chunk — reachable only through that parity — is garbage. NVRAM
// survivor replay rewrites the torn data, but RMW against the torn
// parity preserves the corruption (the delta never cancels).
//
// The fix is the paper's own argument applied to parity: battery-
// backed memory. Before issuing a guarded column update the array
// records the column's partial parity pp — algebraically the XOR of
// the column's cells OUTSIDE the written-alive set, dead member's
// chunk included, at the version being preserved. pp is independent
// of which member writes land, so after a crash
//
//	parity := pp XOR (current disk content of the written slots)
//
// restores a parity consistent with whatever landed, preserving the
// dead chunk exactly; the survivor replay then re-delivers the new
// data through a now-consistent column. Every degraded column whose
// parity implies the dead member's chunk is guarded, each case
// building pp from reads its write path performs anyway:
//
//   - RMW (dead slot unwritten): pp = parity_old XOR the old content
//     of the written slots — the dead chunk rides at its OLD value.
//   - Reconstruct-write / full-column (dead slot written): the dead
//     slot's new frame reaches the media only as what the parity
//     implies, so pp = that frame XOR the unwritten cells' content —
//     the dead chunk rides at its NEW value, the only copy there is.
//
// A column whose parity member is the dead one carries no redundancy
// to protect, and healthy columns need no record: nothing is
// reconstructed from them, and a scrub re-syncs parity from data.

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/sched"
)

// ParitySlot names one written data cell of a guarded column.
type ParitySlot struct {
	Member int
	Local  core.BlockNo
}

// ParityRecord is one battery-backed partial-parity record: an
// in-flight degraded column update whose parity must be recomputable
// whatever subset of its member writes reached the media.
type ParityRecord struct {
	File    core.FileID
	Stripe  int64 // parity stripe index
	Offset  int64 // block offset within the chunk
	PMember int
	PLocal  core.BlockNo
	Slots   []ParitySlot // the written (alive) data cells
	PP      []byte       // XOR of the column's cells outside Slots, at their preserved version
}

// pplKey identifies a column: one record per column may be pending.
type pplKey struct {
	file core.FileID
	s, o int64
}

// pentry is one filed record plus its retirement state. Issuing a
// column's fan does NOT make it safe to drop the record: log-
// structured members commit independently (a segment fill on one, not
// the other), so after a cut one member may serve the update while
// its column peer rolls back. The record stays pending until a whole-
// array write barrier that STARTED after the fan completed — only
// then has every member durably committed the column, and parity and
// data are known to agree on the media.
type pentry struct {
	rec      *ParityRecord
	inflight int    // fans currently updating the column
	armed    bool   // some fan fully issued since the record was filed
	armedSeq uint64 // parityLog.seq at the latest arming
}

// parityLog is the array's battery-backed record set. A plain mutex
// (not a kernel one): the crash harness snapshots the records after
// the kernel has stopped, the way it dumps NVRAM survivors.
type parityLog struct {
	mu   sync.Mutex
	seq  uint64 // barrier-start counter, orders armings against barriers
	recs map[pplKey]*pentry
}

// recordParity files rec for its column. An unarmed existing record
// marks a failed (possibly torn) earlier attempt: its pp — computed
// against pre-tear content — is the one that preserves the dead
// chunk, so a retry keeps it. An armed record's fan fully issued, and
// rec's pp was read from the column that fan left behind: rec
// supersedes it.
func (a *Array) recordParity(rec *ParityRecord) {
	a.ppl.mu.Lock()
	if a.ppl.recs == nil {
		a.ppl.recs = make(map[pplKey]*pentry)
	}
	key := pplKey{rec.File, rec.Stripe, rec.Offset}
	e := a.ppl.recs[key]
	if e == nil || (e.armed && e.inflight == 0) {
		a.ppl.recs[key] = &pentry{rec: rec, inflight: 1}
	} else {
		e.inflight++
	}
	a.ppl.mu.Unlock()
}

// armParity marks the columns' fans fully issued. The records remain
// pending — the members have the writes but may not have committed
// them — and retire at the end of the next whole-array barrier.
func (a *Array) armParity(keys []pplKey) {
	if len(keys) == 0 {
		return
	}
	a.ppl.mu.Lock()
	for _, k := range keys {
		if e := a.ppl.recs[k]; e != nil {
			e.inflight--
			e.armed = true
			e.armedSeq = a.ppl.seq
		}
	}
	a.ppl.mu.Unlock()
}

// disarmParity backs out a failed fan's in-flight count without
// arming: the column may be torn on the media, so its record stays
// pending until a successful retry (or crash recovery's ReplayParity)
// makes the column consistent again.
func (a *Array) disarmParity(keys []pplKey) {
	if len(keys) == 0 {
		return
	}
	a.ppl.mu.Lock()
	for _, k := range keys {
		if e := a.ppl.recs[k]; e != nil {
			e.inflight--
		}
	}
	a.ppl.mu.Unlock()
}

// parityBarrierStart opens a barrier window: records armed before
// this point cover writes the member barriers about to run will
// commit.
func (a *Array) parityBarrierStart() uint64 {
	a.ppl.mu.Lock()
	a.ppl.seq++
	s := a.ppl.seq
	a.ppl.mu.Unlock()
	return s
}

// parityBarrierDone retires records whose fan completed before the
// barrier began: every member has now committed those column
// updates, so parity and data agree on the media and the guard has
// nothing left to preserve. Records armed mid-barrier (or with a fan
// still in flight) wait for the next one.
func (a *Array) parityBarrierDone(s uint64) {
	a.ppl.mu.Lock()
	for k, e := range a.ppl.recs {
		if e.armed && e.inflight == 0 && e.armedSeq < s {
			delete(a.ppl.recs, k)
		}
	}
	a.ppl.mu.Unlock()
}

// PendingParity snapshots the outstanding partial-parity records —
// the battery-backed state a crash harness carries across the power
// cut next to the cache's survivors. Deterministic order.
func (a *Array) PendingParity() []ParityRecord {
	a.ppl.mu.Lock()
	defer a.ppl.mu.Unlock()
	out := make([]ParityRecord, 0, len(a.ppl.recs))
	for _, e := range a.ppl.recs {
		cp := *e.rec
		cp.Slots = append([]ParitySlot(nil), e.rec.Slots...)
		cp.PP = append([]byte(nil), e.rec.PP...)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Stripe != out[j].Stripe {
			return out[i].Stripe < out[j].Stripe
		}
		return out[i].Offset < out[j].Offset
	})
	return out
}

// ReplayParity re-establishes every recorded column's parity on a
// recovered array: parity := pp XOR the current media content of the
// record's written slots. Idempotent — on a column whose update fully
// landed it recomputes the same (correct) parity. Run it after the
// recovery mount and before the NVRAM survivor replay, so the replay
// RMWs against consistent parity. Records for files freed before the
// crash are skipped.
func (a *Array) ReplayParity(t sched.Task, recs []ParityRecord) (applied int, err error) {
	if len(recs) == 0 {
		return 0, nil
	}
	if a.red == nil || !a.red.parity {
		return 0, fmt.Errorf("volume %s: parity records on placement %s", a.name, a.cfg.Placement)
	}
	scratch := make([]byte, core.BlockSize)
	for _, rec := range recs {
		if _, err := a.GetInode(t, rec.File); err == core.ErrNotFound {
			continue
		} else if err != nil {
			return applied, err
		}
		af := a.lookup(t, rec.File)
		if af == nil {
			continue
		}
		if err := a.replayColumn(t, af, rec, scratch); err != nil {
			return applied, err
		}
		applied++
	}
	return applied, nil
}

func (a *Array) replayColumn(t sched.Task, af *afile, rec ParityRecord, scratch []byte) error {
	af.mu.Lock(t)
	defer af.mu.Unlock(t)
	if !a.writeAlive(rec.PMember) {
		return fmt.Errorf("volume %s: parity record for inode %d needs dead member %d", a.name, af.id, rec.PMember)
	}
	parity := append([]byte(nil), rec.PP...)
	for _, sl := range rec.Slots {
		if !a.writeAlive(sl.Member) {
			return fmt.Errorf("volume %s: parity record for inode %d reads dead member %d", a.name, af.id, sl.Member)
		}
		// Holes (a torn shadow growth) read back as zeros, which is
		// exactly the cell's media content.
		a.reads.Add(sl.Member, 1)
		if err := a.sub(sl.Member).ReadBlock(t, af.shadows[sl.Member], sl.Local, scratch); err != nil {
			return err
		}
		xorInto(parity, scratch)
	}
	sh := af.shadows[rec.PMember]
	if end := (int64(rec.PLocal) + 1) * core.BlockSize; !a.isCarrier(af.home, rec.PMember) && end > sh.Size {
		if err := a.sub(rec.PMember).Truncate(t, sh, end); err != nil {
			return err
		}
	}
	a.writes.Add(rec.PMember, 1)
	if err := a.sub(rec.PMember).WriteBlocks(t, sh, []layout.BlockWrite{
		{Blk: rec.PLocal, Data: parity, Size: core.BlockSize},
	}); err != nil {
		return err
	}
	return a.sub(rec.PMember).UpdateInode(t, sh)
}
