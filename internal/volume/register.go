package volume

import "repro/internal/core"

// KindPlacement is the registry kind for array placement policies.
const KindPlacement = "volume-placement"

func init() {
	r := core.Components()
	for _, name := range []string{PlacementAffinity, PlacementStriped, PlacementMirrored, PlacementParity} {
		n := name
		r.Register(KindPlacement, n, func() string { return n })
	}
}
