package volume

import (
	"errors"
	"fmt"

	"repro/internal/layout"
	"repro/internal/sched"
)

// The hot-spare pool: idle, pre-constructed member stacks the array
// can promote onto the moment a death is confirmed, without waiting
// for an operator to provision a replacement. A spare is an ordinary
// unformatted layout over its own disk stack (exactly what Rebuild
// expects as a replacement); attaching it costs nothing until a
// promotion consumes it. Promotion is the existing KillMember +
// Rebuild path — the pool only removes the human from the loop:
//
//	confirmed death ──▶ PromoteSpare ──▶ Rebuild(spare) ──▶ healthy
//	                        │
//	                        └─ pool empty / second fault: refused,
//	                           counted, array keeps serving degraded
//
// The pool state lives behind a plain mutex so supervisors and
// metric scrapers read it without kernel involvement.

// ErrNoSpare reports an empty spare pool at promotion time.
var ErrNoSpare = errors.New("spare pool empty")

// AttachSpare adds an idle replacement member stack to the pool. The
// layout must be freshly constructed (unformatted/unmounted), like a
// Rebuild replacement. Returns the spare's pool slot.
func (a *Array) AttachSpare(l layout.Layout) int {
	a.spareMu.Lock()
	defer a.spareMu.Unlock()
	a.spares = append(a.spares, l)
	return len(a.spares) - 1
}

// SpareSlots returns the total number of pool slots ever attached,
// consumed ones included — the static gate for spare telemetry.
func (a *Array) SpareSlots() int {
	a.spareMu.Lock()
	defer a.spareMu.Unlock()
	return len(a.spares)
}

// SpareCount returns the number of idle spares in the pool.
func (a *Array) SpareCount() int {
	a.spareMu.Lock()
	defer a.spareMu.Unlock()
	n := 0
	for _, s := range a.spares {
		if s != nil {
			n++
		}
	}
	return n
}

// SparePromotions returns the number of spares consumed by
// promotions so far.
func (a *Array) SparePromotions() int64 { return a.promotions.Load() }

// SpareRefusals returns the number of promotion attempts refused —
// empty pool, concurrent maintenance, or a second fault — each one a
// loud signal that the array is running degraded without repair.
func (a *Array) SpareRefusals() int64 { return a.spareRefusals.Load() }

// originOf returns member i's lineage: the spare slot it was
// promoted from, -1 for an original member.
func (a *Array) originOf(i int) int {
	a.spareMu.Lock()
	defer a.spareMu.Unlock()
	return int(a.origin[i])
}

func (a *Array) setOrigin(i, origin int) {
	a.spareMu.Lock()
	a.origin[i] = int32(origin)
	a.spareMu.Unlock()
}

// Origins snapshots every member's lineage (see originOf).
func (a *Array) Origins() []int {
	a.spareMu.Lock()
	defer a.spareMu.Unlock()
	out := make([]int, len(a.origin))
	for i, o := range a.origin {
		out[i] = int(o)
	}
	return out
}

// PromoteSpare rebuilds the dead member onto a spare from the pool
// and returns the consumed spare's slot. It refuses cleanly — with
// the refusal counted for telemetry — when there is no dead member,
// the pool is empty, or another maintenance pass holds the gate (a
// second fault during a rebuild lands here: the promotion is refused
// and the array keeps serving degraded). A spare consumed by a
// failed rebuild is not returned to the pool: its contents are
// undefined.
func (a *Array) PromoteSpare(t sched.Task) (int, error) {
	if a.red == nil {
		return -1, fmt.Errorf("volume %s: promote spare: %w (placement %s)", a.name, ErrDegraded, a.cfg.Placement)
	}
	dead := int(a.deadIdx.Load())
	if dead < 0 {
		return -1, fmt.Errorf("volume %s: promote spare: no dead member", a.name)
	}

	a.spareMu.Lock()
	slot := -1
	var spare layout.Layout
	for i, s := range a.spares {
		if s != nil {
			slot, spare = i, s
			break
		}
	}
	if slot < 0 {
		a.spareMu.Unlock()
		a.spareRefusals.Add(1)
		return -1, fmt.Errorf("volume %s: promote member %d: %w", a.name, dead, ErrNoSpare)
	}
	a.spares[slot] = nil
	a.origin[dead] = int32(slot)
	a.spareMu.Unlock()

	if err := a.Rebuild(t, spare); err != nil {
		a.spareMu.Lock()
		a.origin[dead] = -1
		if errors.Is(err, ErrBusy) {
			// The spare was never touched; put it back.
			a.spares[slot] = spare
		}
		a.spareMu.Unlock()
		a.spareRefusals.Add(1)
		return -1, err
	}
	a.promotions.Add(1)
	return slot, nil
}
