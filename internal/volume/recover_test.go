package volume

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/layout"
	"repro/internal/lfs"
	"repro/internal/sched"
)

// kernels enumerates the two schedulers every recovery invariant must
// hold under: the deterministic virtual kernel and the real one.
func kernels() map[string]func() sched.Kernel {
	return map[string]func() sched.Kernel{
		"virtual": func() sched.Kernel { return sched.NewVirtual(1) },
		"real":    func() sched.Kernel { return sched.NewReal(1) },
	}
}

// runK executes body as a kernel task and drives the kernel to
// completion, whichever kind it is.
func runK(t *testing.T, k sched.Kernel, body func(tk sched.Task)) {
	t.Helper()
	if vk, ok := k.(*sched.VKernel); ok {
		vk.Go("test", func(tk sched.Task) {
			body(tk)
			vk.Stop()
		})
		if err := vk.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return
	}
	done := make(chan struct{})
	k.Go("test", func(tk sched.Task) {
		defer close(done)
		body(tk)
	})
	<-done
}

// buildArray assembles a fresh array of LFS subs over drvs (creating
// mem drivers when nil).
func buildArray(t *testing.T, k sched.Kernel, drvs []device.Driver, width int, cfg Config) ([]device.Driver, *Array) {
	t.Helper()
	if drvs == nil {
		for i := 0; i < width; i++ {
			drvs = append(drvs, device.NewMemDriver(k, fmt.Sprintf("mem%d", i), rigBlocks, nil))
		}
	}
	subs := make([]layout.Layout, width)
	for i := 0; i < width; i++ {
		part := layout.NewPartition(drvs[i], i, 0, rigBlocks, false)
		subs[i] = lfs.New(k, fmt.Sprintf("d%d", i), part, lfs.Config{SegBlocks: 32})
	}
	arr, err := New(k, "arr", subs, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return drvs, arr
}

// TestGeometryMismatchEveryAxisBothKernels formats a 3-wide striped
// array and checks that every mismatch axis — width, placement,
// stripe chunk, and a shuffled member order — is rejected at mount,
// under both kernels.
func TestGeometryMismatchEveryAxisBothKernels(t *testing.T) {
	good := Config{Placement: PlacementStriped, StripeBlocks: 4}
	for kname, mk := range kernels() {
		t.Run(kname, func(t *testing.T) {
			k := mk()
			drvs, arr := buildArray(t, k, nil, 3, good)
			runK(t, k, func(tk sched.Task) {
				if err := arr.Format(tk); err != nil {
					t.Fatalf("Format: %v", err)
				}
				if err := arr.Mount(tk); err != nil {
					t.Fatalf("Mount: %v", err)
				}
				if _, err := arr.AllocInode(tk, core.TypeDirectory); err != nil {
					t.Fatalf("alloc root: %v", err)
				}
				if err := arr.Sync(tk); err != nil {
					t.Fatalf("Sync: %v", err)
				}

				cases := []struct {
					name  string
					drvs  []device.Driver
					width int
					cfg   Config
					want  string
				}{
					{"width", drvs[:2], 2, good, "2"},
					{"placement", drvs, 3, Config{Placement: PlacementAffinity}, "placement"},
					{"stripe", drvs, 3, Config{Placement: PlacementStriped, StripeBlocks: 8}, "stripe"},
					{"member-order", []device.Driver{drvs[1], drvs[0], drvs[2]}, 3, good, "member"},
				}
				for _, tc := range cases {
					_, bad := buildArray(t, k, tc.drvs, tc.width, tc.cfg)
					got := bad.Mount(tk)
					if got == nil {
						t.Fatalf("%s mismatch accepted", tc.name)
					}
					if !strings.Contains(got.Error(), tc.want) {
						t.Fatalf("%s mismatch error %q does not name the axis (%q)", tc.name, got, tc.want)
					}
				}

				// The matching geometry still mounts.
				_, ok := buildArray(t, k, drvs, 3, good)
				if err := ok.Mount(tk); err != nil {
					t.Fatalf("matching geometry rejected: %v", err)
				}
			})
		})
	}
}

// TestEmptyLabelAdoptedAndRewritten covers the crash that beats the
// first label write: the reserved inodes are durable but empty. The
// next mount must adopt them and the next sync must label the array,
// so geometry validation is not silently lost forever.
func TestEmptyLabelAdoptedAndRewritten(t *testing.T) {
	k := sched.NewReal(1)
	cfg := Config{Placement: PlacementStriped, StripeBlocks: 4}
	drvs, arr := buildArray(t, k, nil, 2, cfg)
	runK(t, k, func(tk sched.Task) {
		arr.Format(tk)
		arr.Mount(tk)
		if _, err := arr.AllocInode(tk, core.TypeDirectory); err != nil {
			t.Fatalf("alloc root: %v", err)
		}
		// Make the inodes durable without Array.Sync (which would
		// write the labels): sync the members directly.
		for _, sub := range arr.Subs() {
			if err := sub.Sync(tk); err != nil {
				t.Fatalf("sub sync: %v", err)
			}
		}
	})

	_, arr2 := buildArray(t, k, drvs, 2, cfg)
	runK(t, k, func(tk sched.Task) {
		if err := arr2.Mount(tk); err != nil {
			t.Fatalf("mount with empty labels: %v", err)
		}
		if err := arr2.Sync(tk); err != nil {
			t.Fatalf("sync: %v", err)
		}
	})

	// The array is labeled now: the wrong geometry must be rejected.
	_, bad := buildArray(t, k, drvs, 2, Config{Placement: PlacementAffinity})
	runK(t, k, func(tk sched.Task) {
		if err := bad.Mount(tk); err == nil {
			t.Fatal("wrong placement accepted after label rewrite")
		}
	})
}

// TestArrayRecoverRollsBackHalfAllocation breaks lockstep the way a
// crash inside an allocation fan-out does — the inode durable on one
// member, absent on the other — and checks Recover rolls it back and
// re-syncs the cursors so allocation resumes cleanly.
func TestArrayRecoverRollsBackHalfAllocation(t *testing.T) {
	k := sched.NewReal(1)
	cfg := Config{Placement: PlacementStriped, StripeBlocks: 2}
	drvs, arr := buildArray(t, k, nil, 2, cfg)
	runK(t, k, func(tk sched.Task) {
		if err := arr.Format(tk); err != nil {
			t.Fatalf("Format: %v", err)
		}
		if err := arr.Mount(tk); err != nil {
			t.Fatalf("Mount: %v", err)
		}
		if _, err := arr.AllocInode(tk, core.TypeDirectory); err != nil {
			t.Fatalf("alloc root: %v", err)
		}
		ino, err := arr.AllocInode(tk, core.TypeRegular)
		if err != nil {
			t.Fatalf("alloc: %v", err)
		}
		if err := writeStripes(tk, arr, ino, 4); err != nil {
			t.Fatalf("write: %v", err)
		}
		if err := arr.Sync(tk); err != nil {
			t.Fatalf("Sync: %v", err)
		}
		// Crash mid-fan-out: the next allocation reaches member 0
		// only and becomes durable there.
		if _, err := arr.Subs()[0].AllocInode(tk, core.TypeRegular); err != nil {
			t.Fatalf("sub alloc: %v", err)
		}
		if err := arr.Subs()[0].Sync(tk); err != nil {
			t.Fatalf("sub sync: %v", err)
		}
	})

	_, arr2 := buildArray(t, k, drvs, 2, cfg)
	runK(t, k, func(tk sched.Task) {
		st, err := arr2.Recover(tk)
		if err != nil {
			t.Fatalf("Recover: %v", err)
		}
		found := false
		for _, r := range st.Repairs {
			if strings.Contains(r, "rolled back") || strings.Contains(r, "cursors") {
				found = true
			}
		}
		if !found {
			t.Fatalf("no lockstep repair reported: %v", st.Repairs)
		}
		// Lockstep must hold again: array-level allocation succeeds
		// (a broken lockstep fails loudly inside allocLocked).
		for i := 0; i < 4; i++ {
			if _, err := arr2.AllocInode(tk, core.TypeRegular); err != nil {
				t.Fatalf("alloc after recovery: %v", err)
			}
		}
	})
}

// writeStripes writes nblocks patterned blocks through the array.
func writeStripes(tk sched.Task, arr *Array, ino *layout.Inode, nblocks int) error {
	var ws []layout.BlockWrite
	for b := 0; b < nblocks; b++ {
		ws = append(ws, layout.BlockWrite{Blk: core.BlockNo(b), Data: pattern(core.BlockNo(b), core.BlockSize), Size: core.BlockSize})
	}
	if err := arr.WriteBlocks(tk, ino, ws); err != nil {
		return err
	}
	ino.Size = int64(nblocks) * core.BlockSize
	return arr.UpdateInode(tk, ino)
}

// TestArrayRecoverRepairsShadowSizes creates the crash signature of
// a striped write that reached one member but whose home-size mirror
// never became durable, and checks Recover trims the orphaned
// stripes back to the global size.
func TestArrayRecoverRepairsShadowSizes(t *testing.T) {
	k := sched.NewReal(1)
	cfg := Config{Placement: PlacementStriped, StripeBlocks: 1}
	drvs, arr := buildArray(t, k, nil, 2, cfg)
	var id core.FileID
	runK(t, k, func(tk sched.Task) {
		arr.Format(tk)
		arr.Mount(tk)
		arr.AllocInode(tk, core.TypeDirectory)
		ino, err := arr.AllocInode(tk, core.TypeRegular)
		if err != nil {
			t.Fatalf("alloc: %v", err)
		}
		id = ino.ID
		if err := writeStripes(tk, arr, ino, 4); err != nil {
			t.Fatalf("write: %v", err)
		}
		if err := arr.Sync(tk); err != nil {
			t.Fatalf("Sync: %v", err)
		}
		// Post-sync growth that reaches only the non-home member
		// durably: extend the file, then sync just that member.
		other := 1 - arr.home(id)
		if err := writeStripes(tk, arr, ino, 8); err != nil {
			t.Fatalf("grow: %v", err)
		}
		if err := arr.Subs()[other].Sync(tk); err != nil {
			t.Fatalf("partial sync: %v", err)
		}
	})

	_, arr2 := buildArray(t, k, drvs, 2, cfg)
	runK(t, k, func(tk sched.Task) {
		if _, err := arr2.Recover(tk); err != nil {
			t.Fatalf("Recover: %v", err)
		}
		ino, err := arr2.GetInode(tk, id)
		if err != nil {
			t.Fatalf("GetInode: %v", err)
		}
		if ino.Size != 4*core.BlockSize {
			t.Fatalf("global size %d after recovery, want the durable 4 blocks", ino.Size)
		}
		// Every covered block reads back the synced pattern.
		buf := make([]byte, core.BlockSize)
		for b := 0; b < 4; b++ {
			if err := arr2.ReadBlock(tk, ino, core.BlockNo(b), buf); err != nil {
				t.Fatalf("read %d: %v", b, err)
			}
		}
		// The shadow invariant holds for a fresh write afterwards.
		if err := writeStripes(tk, arr2, ino, 6); err != nil {
			t.Fatalf("write after recovery: %v", err)
		}
		if err := arr2.Sync(tk); err != nil {
			t.Fatalf("sync after recovery: %v", err)
		}
	})
}
