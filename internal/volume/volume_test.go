package volume

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/layout"
	"repro/internal/lfs"
	"repro/internal/sched"
	"repro/internal/stats"
)

// rig is a real-mode array over RAM-backed drivers: real data
// movement, remountable within the process.
type rig struct {
	k    *sched.RKernel
	drvs []device.Driver
	arr  *Array
}

const rigBlocks = 2048

// newRig builds width drivers and an array of fresh LFS layouts over
// them. Passing the drivers of an earlier rig remounts its disks.
func newRig(t *testing.T, k *sched.RKernel, drvs []device.Driver, width int, cfg Config) *rig {
	t.Helper()
	if drvs == nil {
		for i := 0; i < width; i++ {
			drvs = append(drvs, device.NewMemDriver(k, fmt.Sprintf("mem%d", i), rigBlocks, nil))
		}
	}
	subs := make([]layout.Layout, width)
	for i := 0; i < width; i++ {
		part := layout.NewPartition(drvs[i], i, 0, rigBlocks, false)
		subs[i] = lfs.New(k, fmt.Sprintf("d%d", i), part, lfs.Config{SegBlocks: 32})
	}
	arr, err := New(k, "arr", subs, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return &rig{k: k, drvs: drvs, arr: arr}
}

// do runs fn on a kernel task and waits.
func (r *rig) do(t *testing.T, fn func(tk sched.Task) error) {
	t.Helper()
	errc := make(chan error, 1)
	r.k.Go("test", func(tk sched.Task) { errc <- fn(tk) })
	if err := <-errc; err != nil {
		t.Fatalf("task: %v", err)
	}
}

// pattern fills a deterministic byte pattern for file block b.
func pattern(b core.BlockNo, n int) []byte {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = byte(int(b)*131 + i*7 + 3)
	}
	return buf
}

// writeFile formats blocks..partial bytes of data into a fresh
// inode through the array and returns it.
func writeFile(t *testing.T, tk sched.Task, arr *Array, nblocks int, lastBytes int) (*layout.Inode, int64) {
	t.Helper()
	ino, err := arr.AllocInode(tk, core.TypeRegular)
	if err != nil {
		t.Fatalf("AllocInode: %v", err)
	}
	size := int64(nblocks-1)*core.BlockSize + int64(lastBytes)
	var writes []layout.BlockWrite
	for b := 0; b < nblocks; b++ {
		n := core.BlockSize
		if b == nblocks-1 {
			n = lastBytes
		}
		writes = append(writes, layout.BlockWrite{Blk: core.BlockNo(b), Data: pattern(core.BlockNo(b), core.BlockSize), Size: n})
	}
	if err := arr.WriteBlocks(tk, ino, writes); err != nil {
		t.Fatalf("WriteBlocks: %v", err)
	}
	ino.Size = size // the front-end grows sizes as it writes
	if err := arr.UpdateInode(tk, ino); err != nil {
		t.Fatalf("UpdateInode: %v", err)
	}
	return ino, size
}

func checkFile(t *testing.T, tk sched.Task, arr *Array, ino *layout.Inode, nblocks int) {
	t.Helper()
	buf := make([]byte, core.BlockSize)
	for b := 0; b < nblocks; b++ {
		if err := arr.ReadBlock(tk, ino, core.BlockNo(b), buf); err != nil {
			t.Fatalf("ReadBlock %d: %v", b, err)
		}
		if !bytes.Equal(buf, pattern(core.BlockNo(b), core.BlockSize)) {
			t.Fatalf("block %d: read-back mismatch", b)
		}
	}
}

// TestStripedWriteReadRemount writes a striped file across a 3-wide
// real array, syncs, remounts fresh layouts over the same disks, and
// checks bytes and the global size both survive.
func TestStripedWriteReadRemount(t *testing.T) {
	k := sched.NewReal(1)
	cfg := Config{Placement: PlacementStriped, StripeBlocks: 4}
	r := newRig(t, k, nil, 3, cfg)
	var id core.FileID
	var size int64
	const nblocks = 37
	r.do(t, func(tk sched.Task) error {
		if err := r.arr.Format(tk); err != nil {
			return err
		}
		if err := r.arr.Mount(tk); err != nil {
			return err
		}
		// fsys would allocate the root first; model that.
		root, err := r.arr.AllocInode(tk, core.TypeDirectory)
		if err != nil {
			return err
		}
		if root.ID != core.RootFile {
			return fmt.Errorf("root allocated as %d", root.ID)
		}
		ino, sz := writeFile(t, tk, r.arr, nblocks, 1234)
		id, size = ino.ID, sz
		checkFile(t, tk, r.arr, ino, nblocks-1)
		return r.arr.Sync(tk)
	})

	// Every sub-volume must hold a share: the file spans > n*w blocks.
	_, wr := r.arr.RoutedBlocks()
	for i, w := range wr {
		if w == 0 {
			t.Fatalf("sub %d received no writes: %v", i, wr)
		}
	}

	// Remount: fresh layouts + array over the same memory disks.
	r2 := newRig(t, k, r.drvs, 3, cfg)
	r2.do(t, func(tk sched.Task) error {
		if err := r2.arr.Mount(tk); err != nil {
			return err
		}
		ino, err := r2.arr.GetInode(tk, id)
		if err != nil {
			return err
		}
		if ino.Size != size {
			return fmt.Errorf("size after remount: %d, want %d", ino.Size, size)
		}
		checkFile(t, tk, r2.arr, ino, nblocks-1)
		// The partial last block must carry its bytes too.
		buf := make([]byte, core.BlockSize)
		if err := r2.arr.ReadBlock(tk, ino, core.BlockNo(nblocks-1), buf); err != nil {
			return err
		}
		if !bytes.Equal(buf[:1234], pattern(core.BlockNo(nblocks-1), 1234)) {
			return fmt.Errorf("partial last block mismatch after remount")
		}
		return nil
	})
}

// TestStripedLargeFileRemount covers the double-indirect decode
// path: a file whose per-member share exceeds the direct +
// single-indirect span (524 blocks), remounted and read back. The
// home shadow persists the array-global size, so its decode walks
// further than its local map — the nil-leaf cut-off in the layouts
// must end the tree instead of chasing phantom addresses.
func TestStripedLargeFileRemount(t *testing.T) {
	k := sched.NewReal(1)
	cfg := Config{Placement: PlacementStriped, StripeBlocks: 4}
	r := newRig(t, k, nil, 2, cfg)
	const nblocks = 1200 // 600 per member > 524
	var id core.FileID
	var size int64
	r.do(t, func(tk sched.Task) error {
		if err := r.arr.Format(tk); err != nil {
			return err
		}
		if err := r.arr.Mount(tk); err != nil {
			return err
		}
		if _, err := r.arr.AllocInode(tk, core.TypeDirectory); err != nil {
			return err
		}
		ino, sz := writeFile(t, tk, r.arr, nblocks, 100)
		id, size = ino.ID, sz
		return r.arr.Sync(tk)
	})
	r2 := newRig(t, k, r.drvs, 2, cfg)
	r2.do(t, func(tk sched.Task) error {
		if err := r2.arr.Mount(tk); err != nil {
			return err
		}
		ino, err := r2.arr.GetInode(tk, id)
		if err != nil {
			return err
		}
		if ino.Size != size {
			return fmt.Errorf("size after remount: %d, want %d", ino.Size, size)
		}
		checkFile(t, tk, r2.arr, ino, nblocks-1)
		return nil
	})
}

// TestConcurrentWritesAndSync races cache-flush-style writes against
// array syncs on the real kernel; with -race it certifies the shadow
// size updates are properly locked.
func TestConcurrentWritesAndSync(t *testing.T) {
	k := sched.NewReal(1)
	r := newRig(t, k, nil, 3, Config{Placement: PlacementStriped, StripeBlocks: 2})
	var inos []*layout.Inode
	r.do(t, func(tk sched.Task) error {
		if err := r.arr.Format(tk); err != nil {
			return err
		}
		if err := r.arr.Mount(tk); err != nil {
			return err
		}
		if _, err := r.arr.AllocInode(tk, core.TypeDirectory); err != nil {
			return err
		}
		for i := 0; i < 4; i++ {
			ino, err := r.arr.AllocInode(tk, core.TypeRegular)
			if err != nil {
				return err
			}
			inos = append(inos, ino)
		}
		return nil
	})
	errc := make(chan error, 2)
	k.Go("writer", func(tk sched.Task) {
		errc <- func() error {
			for round := 0; round < 20; round++ {
				for fi, ino := range inos {
					var ws []layout.BlockWrite
					for b := 0; b < 6; b++ {
						blk := core.BlockNo(round*6 + b)
						ws = append(ws, layout.BlockWrite{Blk: blk, Data: pattern(blk, core.BlockSize), Size: core.BlockSize})
					}
					if err := r.arr.WriteBlocks(tk, ino, ws); err != nil {
						return fmt.Errorf("file %d round %d: %w", fi, round, err)
					}
					ino.Size = int64(round*6+6) * core.BlockSize
				}
			}
			return nil
		}()
	})
	k.Go("syncer", func(tk sched.Task) {
		errc <- func() error {
			for i := 0; i < 10; i++ {
				if err := r.arr.Sync(tk); err != nil {
					return fmt.Errorf("sync %d: %w", i, err)
				}
			}
			return nil
		}()
	})
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

// TestGeometryMismatchRejected formats a 3-wide striped array and
// checks that remounting its members under a different width,
// placement or stripe fails via the label.
func TestGeometryMismatchRejected(t *testing.T) {
	k := sched.NewReal(1)
	cfg := Config{Placement: PlacementStriped, StripeBlocks: 4}
	r := newRig(t, k, nil, 3, cfg)
	r.do(t, func(tk sched.Task) error {
		if err := r.arr.Format(tk); err != nil {
			return err
		}
		if err := r.arr.Mount(tk); err != nil {
			return err
		}
		if _, err := r.arr.AllocInode(tk, core.TypeDirectory); err != nil {
			return err
		}
		return r.arr.Sync(tk)
	})
	for _, bad := range []Config{
		{Placement: PlacementStriped, StripeBlocks: 8},
		{Placement: PlacementAffinity},
	} {
		r2 := newRig(t, k, r.drvs, 3, bad)
		errc := make(chan error, 1)
		k.Go("mount", func(tk sched.Task) { errc <- r2.arr.Mount(tk) })
		if err := <-errc; err == nil {
			t.Fatalf("mount with %+v accepted a striped/4 image set", bad)
		}
	}
	// Wrong width: only the first 2 members.
	r3 := newRig(t, k, r.drvs[:2], 2, cfg)
	errc := make(chan error, 1)
	k.Go("mount", func(tk sched.Task) { errc <- r3.arr.Mount(tk) })
	if err := <-errc; err == nil {
		t.Fatal("2-wide mount accepted a 3-wide image set")
	}
}

// TestAffinityPlacement checks affinity mode keeps each file whole
// on one sub-volume while spreading distinct files around, and that
// lockstep keeps inode IDs unique.
func TestAffinityPlacement(t *testing.T) {
	k := sched.NewReal(1)
	r := newRig(t, k, nil, 4, Config{Placement: PlacementAffinity})
	r.do(t, func(tk sched.Task) error {
		if err := r.arr.Format(tk); err != nil {
			return err
		}
		if err := r.arr.Mount(tk); err != nil {
			return err
		}
		seen := map[core.FileID]bool{}
		homes := map[int]bool{}
		for i := 0; i < 16; i++ {
			ino, err := r.arr.AllocInode(tk, core.TypeRegular)
			if err != nil {
				return err
			}
			if seen[ino.ID] {
				return fmt.Errorf("duplicate inode id %d", ino.ID)
			}
			seen[ino.ID] = true
			wrBefore := append([]int64(nil), mustWrites(r.arr)...)
			if err := r.arr.WriteBlocks(tk, ino, []layout.BlockWrite{
				{Blk: 0, Data: pattern(0, core.BlockSize), Size: core.BlockSize},
				{Blk: 1, Data: pattern(1, core.BlockSize), Size: core.BlockSize},
			}); err != nil {
				return err
			}
			wrAfter := mustWrites(r.arr)
			touched := -1
			for s := range wrAfter {
				if wrAfter[s] != wrBefore[s] {
					if touched >= 0 {
						return fmt.Errorf("file %d spread over subs %d and %d in affinity mode", ino.ID, touched, s)
					}
					touched = s
				}
			}
			homes[touched] = true
		}
		if len(homes) < 2 {
			return fmt.Errorf("all 16 files landed on one sub-volume: %v", homes)
		}
		return nil
	})
}

func mustWrites(a *Array) []int64 {
	_, w := a.RoutedBlocks()
	return w
}

// TestTruncateStriped shrinks a striped file and checks reads past
// the boundary are holes while earlier blocks survive, after a
// remount.
func TestTruncateStriped(t *testing.T) {
	k := sched.NewReal(1)
	cfg := Config{Placement: PlacementStriped, StripeBlocks: 2}
	r := newRig(t, k, nil, 2, cfg)
	var id core.FileID
	const keep = 5
	r.do(t, func(tk sched.Task) error {
		if err := r.arr.Format(tk); err != nil {
			return err
		}
		if err := r.arr.Mount(tk); err != nil {
			return err
		}
		if _, err := r.arr.AllocInode(tk, core.TypeDirectory); err != nil {
			return err
		}
		ino, _ := writeFile(t, tk, r.arr, 16, core.BlockSize)
		id = ino.ID
		if err := r.arr.Truncate(tk, ino, keep*core.BlockSize); err != nil {
			return err
		}
		if err := r.arr.UpdateInode(tk, ino); err != nil {
			return err
		}
		if ino.Size != keep*core.BlockSize {
			return fmt.Errorf("size after truncate: %d", ino.Size)
		}
		return r.arr.Sync(tk)
	})
	r2 := newRig(t, k, r.drvs, 2, cfg)
	r2.do(t, func(tk sched.Task) error {
		if err := r2.arr.Mount(tk); err != nil {
			return err
		}
		ino, err := r2.arr.GetInode(tk, id)
		if err != nil {
			return err
		}
		if ino.Size != keep*core.BlockSize {
			return fmt.Errorf("size after remount: %d, want %d", ino.Size, keep*core.BlockSize)
		}
		checkFile(t, tk, r2.arr, ino, keep)
		buf := make([]byte, core.BlockSize)
		if err := r2.arr.ReadBlock(tk, ino, keep, buf); err != nil {
			return err
		}
		for i, b := range buf {
			if b != 0 {
				return fmt.Errorf("truncated block not a hole at byte %d", i)
			}
		}
		return nil
	})
}

// TestFreeInodeLockstep allocates, frees, and re-allocates across
// the array, checking the sub-volumes stay in lockstep and freed
// files really vanish.
func TestFreeInodeLockstep(t *testing.T) {
	k := sched.NewReal(1)
	r := newRig(t, k, nil, 3, Config{Placement: PlacementStriped, StripeBlocks: 2})
	r.do(t, func(tk sched.Task) error {
		if err := r.arr.Format(tk); err != nil {
			return err
		}
		if err := r.arr.Mount(tk); err != nil {
			return err
		}
		if _, err := r.arr.AllocInode(tk, core.TypeDirectory); err != nil {
			return err
		}
		a, _ := writeFile(t, tk, r.arr, 7, core.BlockSize)
		b, _ := writeFile(t, tk, r.arr, 7, core.BlockSize)
		if a.ID == b.ID {
			return fmt.Errorf("duplicate ids")
		}
		if err := r.arr.FreeInode(tk, a.ID); err != nil {
			return err
		}
		if _, err := r.arr.GetInode(tk, a.ID); err != core.ErrNotFound {
			return fmt.Errorf("freed inode still reachable: %v", err)
		}
		c, err := r.arr.AllocInode(tk, core.TypeRegular)
		if err != nil {
			return err
		}
		if c.ID == b.ID {
			return fmt.Errorf("reused live id %d", b.ID)
		}
		return r.arr.Sync(tk)
	})
}

// TestWidth1Passthrough checks a one-member array is transparent:
// same name, same stats set, and inode numbers identical to driving
// the sub-layout directly (no label file is interposed).
func TestWidth1Passthrough(t *testing.T) {
	k := sched.NewReal(1)
	build := func() (layout.Layout, *Array) {
		drv := device.NewMemDriver(k, "solo", rigBlocks, nil)
		part := layout.NewPartition(drv, 0, 0, rigBlocks, false)
		sub := lfs.New(k, "solo", part, lfs.Config{SegBlocks: 32})
		arr, err := New(k, "solo-arr", []layout.Layout{sub}, Config{Placement: PlacementStriped})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return sub, arr
	}
	sub, arr := build()
	if arr.Name() != sub.Name() {
		t.Fatalf("width-1 array name %q, sub %q", arr.Name(), sub.Name())
	}
	direct, _ := build()
	errc := make(chan error, 1)
	k.Go("t", func(tk sched.Task) {
		errc <- func() error {
			for _, l := range []layout.Layout{arr, direct} {
				if err := l.Format(tk); err != nil {
					return err
				}
				if err := l.Mount(tk); err != nil {
					return err
				}
			}
			// The same alloc sequence must yield the same IDs: no
			// hidden label file at width 1.
			for i := 0; i < 5; i++ {
				typ := core.TypeRegular
				if i == 0 {
					typ = core.TypeDirectory
				}
				a, err := arr.AllocInode(tk, typ)
				if err != nil {
					return err
				}
				d, err := direct.AllocInode(tk, typ)
				if err != nil {
					return err
				}
				if a.ID != d.ID {
					return fmt.Errorf("alloc %d: array id %d, direct id %d", i, a.ID, d.ID)
				}
			}
			return nil
		}()
	})
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	set := stats.NewSet()
	arr.Stats(set)
	setDirect := stats.NewSet()
	direct.Stats(setDirect)
	if set.Len() != setDirect.Len() {
		t.Fatalf("width-1 array registers %d sources, direct layout %d", set.Len(), setDirect.Len())
	}
}

// TestStatsGroups checks the array-level merged counters render the
// per-volume split.
func TestStatsGroups(t *testing.T) {
	k := sched.NewReal(1)
	r := newRig(t, k, nil, 2, Config{Placement: PlacementStriped, StripeBlocks: 1})
	r.do(t, func(tk sched.Task) error {
		if err := r.arr.Format(tk); err != nil {
			return err
		}
		if err := r.arr.Mount(tk); err != nil {
			return err
		}
		if _, err := r.arr.AllocInode(tk, core.TypeDirectory); err != nil {
			return err
		}
		ino, _ := writeFile(t, tk, r.arr, 4, core.BlockSize)
		checkFile(t, tk, r.arr, ino, 4)
		return nil
	})
	rd, wr := r.arr.RoutedBlocks()
	if len(rd) != 2 || len(wr) != 2 {
		t.Fatalf("RoutedBlocks arity: %v %v", rd, wr)
	}
	if wr[0] != 2 || wr[1] != 2 {
		t.Fatalf("stripe-1 writes of 4 blocks should split 2/2, got %v", wr)
	}
	if rd[0] != 2 || rd[1] != 2 {
		t.Fatalf("reads should split 2/2, got %v", rd)
	}
	set := stats.NewSet()
	r.arr.Stats(set)
	out := set.Render()
	if !bytes.Contains([]byte(out), []byte("arr.array_blocks_written: total=4 (d0=2 d1=2)")) {
		t.Fatalf("merged counter line missing from:\n%s", out)
	}
}
