package disk

import "repro/internal/core"

func init() {
	r := core.Components()
	r.Register(core.KindDiskModel, "hp97560", HP97560)
	r.Register(core.KindDiskModel, "naive", Naive)
}
