package disk

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sched"
	"repro/internal/stats"
)

// nullConn is a free connection for tests that do not model the bus.
type nullConn struct{}

func (nullConn) Send(t sched.Task, n int64) time.Duration { return 0 }

func newTestDisk(seed int64, p Params) (*sched.VKernel, *Disk) {
	k := sched.NewVirtual(seed)
	d := New(k, p, nullConn{})
	d.Start()
	return k, d
}

// doIO runs one request through the disk and returns its latency.
func doIO(t *testing.T, k *sched.VKernel, d *Disk, op Op, lba int64, sectors int) time.Duration {
	t.Helper()
	var lat time.Duration
	k.Go("host", func(tk sched.Task) {
		r := &IOReq{Op: op, LBA: lba, Sectors: sectors, Done: k.NewEvent("done")}
		start := k.Now()
		d.Submit(tk, r)
		r.Done.Wait(tk)
		lat = k.Now().Sub(start)
		k.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return lat
}

func TestHP97560Capacity(t *testing.T) {
	_, d := newTestDisk(1, HP97560("d0"))
	want := int64(1962 * 19 * 72)
	if d.CapacitySectors() != want {
		t.Fatalf("capacity = %d sectors, want %d", d.CapacitySectors(), want)
	}
	if d.CapacityBlocks() != want/8 {
		t.Fatalf("blocks = %d", d.CapacityBlocks())
	}
}

func TestRotationPeriod(t *testing.T) {
	_, d := newTestDisk(1, HP97560("d0"))
	// 4002 rpm → 14.992 ms per revolution.
	p := d.RotationPeriod()
	if p < 14900*time.Microsecond || p > 15000*time.Microsecond {
		t.Fatalf("rotation period = %v, want ≈14.99ms", p)
	}
}

func TestSeekCurve(t *testing.T) {
	_, d := newTestDisk(1, HP97560("d0"))
	if d.SeekTime(0) != 0 {
		t.Fatalf("zero-distance seek = %v", d.SeekTime(0))
	}
	// Short seek: 3.24 + 0.4*sqrt(100) = 7.24 ms.
	if got := d.SeekTime(100); got < 7230*time.Microsecond || got > 7250*time.Microsecond {
		t.Fatalf("SeekTime(100) = %v, want ≈7.24ms", got)
	}
	// Long seek: 8.00 + 0.008*1000 = 16 ms.
	if got := d.SeekTime(1000); got < 15990*time.Microsecond || got > 16010*time.Microsecond {
		t.Fatalf("SeekTime(1000) = %v, want ≈16ms", got)
	}
	// Symmetric in direction.
	if d.SeekTime(-100) != d.SeekTime(100) {
		t.Fatal("seek not symmetric")
	}
	// Monotone nondecreasing.
	prev := time.Duration(0)
	for dist := 0; dist < 1962; dist += 13 {
		s := d.SeekTime(dist)
		if s < prev {
			t.Fatalf("seek curve decreasing at %d", dist)
		}
		prev = s
	}
}

func TestLocateRoundTrip(t *testing.T) {
	_, d := newTestDisk(1, HP97560("d0"))
	prop := func(raw uint32) bool {
		lba := int64(raw) % d.CapacitySectors()
		cyl, head, sector := d.locate(lba)
		if cyl < 0 || cyl >= d.p.Cylinders || head < 0 || head >= d.p.Heads ||
			sector < 0 || sector >= d.p.SectorsPerTrack {
			return false
		}
		back := (int64(cyl)*int64(d.p.Heads)+int64(head))*int64(d.p.SectorsPerTrack) + int64(sector)
		return back == lba
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReadLatencyWindow(t *testing.T) {
	k, d := newTestDisk(3, HP97560("d0"))
	lat := doIO(t, k, d, Read, 123456, 8) // one 4KB block
	// Floor: controller overhead (2 ms). Ceiling for a single read
	// from cylinder 0: seek (≤ ~23.7ms) + rotation (≤ 15ms) +
	// transfer + overhead. Use a generous bound.
	if lat < 2*time.Millisecond {
		t.Fatalf("read latency %v below controller overhead", lat)
	}
	if lat > 45*time.Millisecond {
		t.Fatalf("single read latency %v implausibly high", lat)
	}
}

func TestSequentialReadHitsCache(t *testing.T) {
	p := HP97560("d0")
	k := sched.NewVirtual(5)
	d := New(k, p, nullConn{})
	d.Start()
	var first, second time.Duration
	k.Go("host", func(tk sched.Task) {
		r1 := &IOReq{Op: Read, LBA: 1000, Sectors: 8, Done: k.NewEvent("d1")}
		t0 := k.Now()
		d.Submit(tk, r1)
		r1.Done.Wait(tk)
		first = k.Now().Sub(t0)
		tk.Sleep(20 * time.Millisecond) // give the drive its idle read-ahead
		r2 := &IOReq{Op: Read, LBA: 1008, Sectors: 8, Done: k.NewEvent("d2")}
		t1 := k.Now()
		d.Submit(tk, r2)
		r2.Done.Wait(tk)
		second = k.Now().Sub(t1)
		if !r2.CacheHit {
			t.Error("sequential read missed the read-ahead cache")
		}
		k.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if second >= first {
		t.Fatalf("cached read (%v) not faster than cold read (%v)", second, first)
	}
	if second > 4*time.Millisecond {
		t.Fatalf("cache-hit read took %v, want ≈ controller overhead", second)
	}
}

func TestImmediateReportWriteFast(t *testing.T) {
	k, d := newTestDisk(7, HP97560("d0"))
	lat := doIO(t, k, d, Write, 500000, 8)
	// Immediate-report completes before any mechanism work.
	if lat > time.Millisecond {
		t.Fatalf("immediate-reported write took %v", lat)
	}
}

func TestWriteWithoutImmediateReport(t *testing.T) {
	p := HP97560("d0")
	p.ImmediateReport = false
	k, d := newTestDisk(7, p)
	lat := doIO(t, k, d, Write, 500000, 8)
	if lat < 2*time.Millisecond {
		t.Fatalf("synchronous write took %v, below overhead", lat)
	}
}

func TestImmediateReportCacheFills(t *testing.T) {
	// 128 KB cache = 32 blocks of 4 KB. Burst 64 block writes: the
	// first ≈32 immediate-report; later ones must wait for destage,
	// visible as mechanism-bound completion of the burst.
	p := HP97560("d0")
	k := sched.NewVirtual(11)
	d := New(k, p, nullConn{})
	d.Start()
	imm := 0
	k.Go("host", func(tk sched.Task) {
		for i := 0; i < 64; i++ {
			r := &IOReq{Op: Write, LBA: int64(1000 + i*8), Sectors: 8, Done: k.NewEvent("w")}
			d.Submit(tk, r)
			r.Done.Wait(tk)
			if r.CacheHit {
				imm++
			}
		}
		k.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if imm == 0 || imm == 64 {
		t.Fatalf("immediate reports = %d of 64; cache limit not exercised", imm)
	}
}

func TestNaiveModelFlat(t *testing.T) {
	p := Naive("naive0", 10*time.Millisecond)
	k, d := newTestDisk(13, p)
	near := doIO(t, k, d, Read, 100, 8)
	k2, d2 := newTestDisk(13, p)
	far := doIO(t, k2, d2, Read, d2.CapacitySectors()-100, 8)
	diff := near - far
	if diff < 0 {
		diff = -diff
	}
	if diff > time.Millisecond {
		t.Fatalf("naive model position-dependent: near=%v far=%v", near, far)
	}
}

func TestRotWaitBounds(t *testing.T) {
	_, d := newTestDisk(1, HP97560("d0"))
	rev := d.RotationPeriod()
	for now := sched.Time(0); now < sched.Time(3*rev); now += sched.Time(rev / 7) {
		for p := 0; p < d.p.SectorsPerTrack; p += 5 {
			w := d.rotWait(now, p)
			if w < 0 || w >= rev {
				t.Fatalf("rotWait(%v, %d) = %v outside [0, rev)", now, p, w)
			}
		}
	}
}

func TestDiskStatsRegister(t *testing.T) {
	k, d := newTestDisk(1, HP97560("d0"))
	set := stats.NewSet()
	d.Stats(set)
	if set.Len() != 7 {
		t.Fatalf("stats sources = %d, want 7", set.Len())
	}
	doIO(t, k, d, Read, 4096, 8)
	if d.BusyTime() == 0 {
		t.Fatal("busy time not accounted")
	}
	if d.String() == "" {
		t.Fatal("empty description")
	}
}

func TestMultiTrackTransfer(t *testing.T) {
	// A request larger than one track must cross heads and still
	// complete with sane timing.
	k, d := newTestDisk(17, HP97560("d0"))
	lat := doIO(t, k, d, Read, 0, 200) // 200 sectors ≈ 2.8 tracks
	min := time.Duration(200) * d.sectorTime()
	if lat < min {
		t.Fatalf("multi-track read %v faster than media rate %v", lat, min)
	}
	if lat > 150*time.Millisecond {
		t.Fatalf("multi-track read %v implausibly slow", lat)
	}
}
