// Package disk implements the simulator's disk component: a
// representative of a real disk that knows about heads, tracks,
// sectors, rotational speed, controller overhead and cache policy.
// Each disk is modeled by its own thread of control that waits for
// work, seeks, takes the rotational delay, transfers the media, and
// reports back over the host/disk connection.
//
// The detailed model follows the HP 97560 as published by Ruemmler &
// Wilkes and by Kotz et al. — the same drive the paper simulates —
// including the 128 KB cache used for immediate-reported writes and
// idle read-ahead. A deliberately naive fixed-latency model is also
// provided to reproduce the paper's warning that simple disk models
// mislead (Ruemmler reported errors up to 112%).
package disk

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/stats"
)

// Op is the direction of an I/O request.
type Op uint8

const (
	// Read moves sectors from disk to host.
	Read Op = iota
	// Write moves sectors from host to disk.
	Write
)

func (o Op) String() string {
	if o == Read {
		return "read"
	}
	return "write"
}

// IOReq is the I/O-request data structure exchanged between
// disk-driver and disk. It carries everything the simulator needs to
// play the operation plus timing fields for measurement.
type IOReq struct {
	Op      Op
	LBA     int64 // sector address
	Sectors int

	// Done is signaled exactly once when the request completes
	// (for immediate-reported writes: when the data is accepted
	// into the disk cache).
	Done sched.Event

	// Measurements, filled in by the disk.
	QueuedAt  sched.Time
	StartedAt sched.Time
	DoneAt    sched.Time
	CacheHit  bool
	SeekTime  time.Duration
	RotDelay  time.Duration
}

// Params describes a disk model.
type Params struct {
	Name            string
	Cylinders       int
	Heads           int
	SectorsPerTrack int
	RPM             int

	// Seek curve, Ruemmler & Wilkes form: 0 for d=0;
	// SeekA + SeekB*sqrt(d) ms for d < ShortSeekCyls;
	// SeekC + SeekD*d ms otherwise.
	ShortSeekCyls              int
	SeekA, SeekB, SeekC, SeekD float64

	HeadSwitch time.Duration
	TrackSkew  int // sectors of skew per head switch
	CylSkew    int // sectors of skew per cylinder crossing

	ControllerOverhead time.Duration
	CacheBytes         int64
	ReadAheadBytes     int64
	ImmediateReport    bool

	// FixedAccess, when nonzero, selects the naive model: every
	// request costs ControllerOverhead + FixedAccess + media
	// transfer, with no seek/rotation simulation.
	FixedAccess time.Duration
}

// HP97560 returns the published HP 97560 parameters: 1962 cylinders,
// 19 heads, 72 sectors of 512 bytes per track (≈1.3 GB), 4002 rpm,
// 128 KB cache, immediate-reported writes and 4 KB read-ahead. The
// 2 ms controller overhead matches the paper's observed cache-service
// floor.
func HP97560(name string) Params {
	return Params{
		Name:            name,
		Cylinders:       1962,
		Heads:           19,
		SectorsPerTrack: 72,
		RPM:             4002,
		ShortSeekCyls:   383,
		SeekA:           3.24, SeekB: 0.400,
		SeekC: 8.00, SeekD: 0.008,
		HeadSwitch:         1600 * time.Microsecond,
		TrackSkew:          8,
		CylSkew:            18,
		ControllerOverhead: 2 * time.Millisecond,
		CacheBytes:         128 << 10,
		ReadAheadBytes:     4 << 10,
		ImmediateReport:    true,
	}
}

// Naive returns a fixed-latency model of the same geometry: the
// "simple disk model" the paper warns about.
func Naive(name string, avg time.Duration) Params {
	p := HP97560(name)
	p.FixedAccess = avg
	p.ImmediateReport = false
	p.CacheBytes = 0
	p.ReadAheadBytes = 0
	return p
}

// SectorBytes is the sector size the models use.
const SectorBytes = core.SectorSize

// Conn is the disk's view of the host/disk connection: enough of
// bus.Bus to acquire, transfer and release. It is an interface so
// disks can be tested without a bus.
type Conn interface {
	Send(t sched.Task, n int64) time.Duration
}

// Disk simulates one drive.
type Disk struct {
	p    Params
	k    sched.Kernel
	conn Conn

	// Mechanism state.
	curCyl  int
	curHead int

	// Incoming FIFO from the driver; ordering policy lives in the
	// driver, the drive services in arrival order.
	queue []*IOReq
	work  sched.Event

	// Cache state: one read segment (most recent read + read-ahead)
	// and a dirty byte count for immediate-reported writes.
	cacheStart, cacheEnd int64 // cached sector range [start,end)
	dirtyBytes           int64

	// Statistics plug-ins.
	reads, writes, cacheHits, immReports *stats.Counter
	seekMS                               *stats.Moments
	rotMS                                *stats.Moments
	rotHist                              *stats.Histogram
	busySince                            sched.Time
	busyTotal                            time.Duration
}

// New creates a disk on kernel k connected through conn. Call Start
// to spawn its mechanism task.
func New(k sched.Kernel, p Params, conn Conn) *Disk {
	d := &Disk{
		p:          p,
		k:          k,
		conn:       conn,
		work:       k.NewEvent(p.Name + ".work"),
		cacheStart: -1,
		cacheEnd:   -1,
		reads:      stats.NewCounter(p.Name + ".reads"),
		writes:     stats.NewCounter(p.Name + ".writes"),
		cacheHits:  stats.NewCounter(p.Name + ".cache_hits"),
		immReports: stats.NewCounter(p.Name + ".immediate_reports"),
		seekMS:     stats.NewMoments(p.Name + ".seek_ms"),
		rotMS:      stats.NewMoments(p.Name + ".rot_ms"),
		rotHist:    stats.NewLinearHistogram(p.Name+".rot_delay_ms", 3, 5),
	}
	return d
}

// Params returns the disk's model parameters.
func (d *Disk) Params() Params { return d.p }

// CapacitySectors returns the number of addressable sectors.
func (d *Disk) CapacitySectors() int64 {
	return int64(d.p.Cylinders) * int64(d.p.Heads) * int64(d.p.SectorsPerTrack)
}

// CapacityBlocks returns capacity in file-system blocks.
func (d *Disk) CapacityBlocks() int64 {
	return d.CapacitySectors() / core.SectorsPerBlock
}

// RotationPeriod returns the time of one revolution.
func (d *Disk) RotationPeriod() time.Duration {
	return time.Duration(int64(time.Minute) / int64(d.p.RPM))
}

// sectorTime returns the time one sector passes under the head.
func (d *Disk) sectorTime() time.Duration {
	return d.RotationPeriod() / time.Duration(d.p.SectorsPerTrack)
}

// SeekTime evaluates the seek curve for a move of dist cylinders.
func (d *Disk) SeekTime(dist int) time.Duration {
	if dist < 0 {
		dist = -dist
	}
	if dist == 0 {
		return 0
	}
	var ms float64
	if dist < d.p.ShortSeekCyls {
		ms = d.p.SeekA + d.p.SeekB*math.Sqrt(float64(dist))
	} else {
		ms = d.p.SeekC + d.p.SeekD*float64(dist)
	}
	return time.Duration(ms * float64(time.Millisecond))
}

// locate maps a sector LBA to (cylinder, head, sector).
func (d *Disk) locate(lba int64) (cyl, head, sector int) {
	spt := int64(d.p.SectorsPerTrack)
	perCyl := spt * int64(d.p.Heads)
	cyl = int(lba / perCyl)
	head = int((lba % perCyl) / spt)
	sector = int(lba % spt)
	return
}

// physPos returns the rotational position (in sectors) of logical
// sector s on the given track, after skew.
func (d *Disk) physPos(cyl, head, sector int) int {
	return (sector + cyl*d.p.CylSkew + head*d.p.TrackSkew) % d.p.SectorsPerTrack
}

// rotWait returns the rotational delay until physical sector p
// arrives under the head at time now.
func (d *Disk) rotWait(now sched.Time, p int) time.Duration {
	st := int64(d.sectorTime())
	rev := st * int64(d.p.SectorsPerTrack)
	cur := int64(now) % rev // position within revolution, ns
	target := int64(p) * st
	delta := target - cur
	if delta < 0 {
		delta += rev
	}
	return time.Duration(delta)
}

// Start spawns the drive's mechanism task.
func (d *Disk) Start() {
	d.k.Go(d.p.Name, d.mechanismLoop)
}

// Submit hands an I/O request to the drive. The driver calls it
// after transferring the request (and write data) over the bus.
// Immediate-reported writes complete here when cache space allows.
func (d *Disk) Submit(t sched.Task, r *IOReq) {
	r.QueuedAt = d.k.Now()
	bytes := int64(r.Sectors) * SectorBytes
	if r.Op == Write && d.p.ImmediateReport && d.dirtyBytes+bytes <= d.p.CacheBytes {
		d.dirtyBytes += bytes
		d.immReports.Inc()
		r.CacheHit = true
		r.DoneAt = d.k.Now()
		r.Done.Signal() // completes now; media write happens below
	}
	d.queue = append(d.queue, r)
	d.work.Signal()
}

// QueueLen reports the number of requests the drive has accepted
// but not finished with.
func (d *Disk) QueueLen() int { return len(d.queue) }

// mechanismLoop is the drive's thread of control.
func (d *Disk) mechanismLoop(t sched.Task) {
	for {
		d.work.Wait(t)
		if len(d.queue) == 0 {
			continue
		}
		r := d.queue[0]
		d.queue = d.queue[1:]
		d.service(t, r)
		// Idle read-ahead: when no more requests wait, extend the
		// cache segment past the last read.
		if r.Op == Read && len(d.queue) == 0 && d.p.ReadAheadBytes > 0 {
			d.readAhead(t)
		}
	}
}

// service performs one request's mechanism work and completion.
func (d *Disk) service(t sched.Task, r *IOReq) {
	r.StartedAt = d.k.Now()
	d.busySince = d.k.Now()
	t.Sleep(d.p.ControllerOverhead)

	bytes := int64(r.Sectors) * SectorBytes
	switch {
	case d.p.FixedAccess > 0:
		// Naive model: flat access time plus media rate.
		t.Sleep(d.p.FixedAccess)
		t.Sleep(time.Duration(r.Sectors) * d.sectorTime())

	case r.Op == Read && r.LBA >= d.cacheStart && r.LBA+int64(r.Sectors) <= d.cacheEnd:
		// Whole request in the cache segment: no mechanism work.
		r.CacheHit = true
		d.cacheHits.Inc()

	default:
		d.mechTransfer(t, r)
		if r.Op == Read {
			d.cacheStart, d.cacheEnd = r.LBA, r.LBA+int64(r.Sectors)
		} else if r.LBA < d.cacheEnd && r.LBA+int64(r.Sectors) > d.cacheStart {
			// Write overlapping the read segment invalidates it.
			d.cacheStart, d.cacheEnd = -1, -1
		}
	}

	if r.Op == Read {
		d.reads.Inc()
	} else {
		d.writes.Inc()
	}
	d.busyTotal += d.k.Now().Sub(d.busySince)

	if r.Op == Write && r.CacheHit {
		// Already immediate-reported; just release the cache space.
		d.dirtyBytes -= bytes
		return
	}
	// Reconnect and return results (data for reads, status only
	// for writes).
	resp := int64(32)
	if r.Op == Read {
		resp += bytes
	}
	d.conn.Send(t, resp)
	r.DoneAt = d.k.Now()
	r.Done.Signal()
}

// mechTransfer seeks, waits rotation and moves r's sectors over the
// media, crossing tracks and cylinders as needed.
func (d *Disk) mechTransfer(t sched.Task, r *IOReq) {
	cyl, head, sector := d.locate(r.LBA)
	// Position the arm.
	if cyl != d.curCyl {
		st := d.SeekTime(cyl - d.curCyl)
		r.SeekTime = st
		d.seekMS.Observe(float64(st) / 1e6)
		t.Sleep(st)
		d.curCyl = cyl
		d.curHead = head
	} else if head != d.curHead {
		t.Sleep(d.p.HeadSwitch)
		d.curHead = head
	}
	remaining := r.Sectors
	first := true
	for remaining > 0 {
		onTrack := d.p.SectorsPerTrack - sector
		n := remaining
		if n > onTrack {
			n = onTrack
		}
		w := d.rotWait(d.k.Now(), d.physPos(cyl, head, sector))
		if first {
			r.RotDelay = w
			d.rotMS.Observe(float64(w) / 1e6)
			d.rotHist.Observe(int64(w / time.Millisecond))
			first = false
		}
		t.Sleep(w)
		t.Sleep(time.Duration(n) * d.sectorTime())
		remaining -= n
		sector += n
		if remaining > 0 {
			sector = 0
			head++
			if head == d.p.Heads {
				head = 0
				cyl++
				t.Sleep(d.SeekTime(1))
				d.curCyl = cyl
			} else {
				t.Sleep(d.p.HeadSwitch)
			}
			d.curHead = head
		}
	}
}

// readAhead extends the cache segment by ReadAheadBytes sectors
// following the last read, as the HP 97560 does when idle.
func (d *Disk) readAhead(t sched.Task) {
	if d.cacheEnd < 0 || d.cacheEnd >= d.CapacitySectors() {
		return
	}
	n := d.p.ReadAheadBytes / SectorBytes
	if d.cacheEnd+n > d.CapacitySectors() {
		n = d.CapacitySectors() - d.cacheEnd
	}
	// Sequential continuation: media time only.
	t.Sleep(time.Duration(n) * d.sectorTime())
	d.cacheEnd += n
	// Bound the segment to the cache size.
	maxSectors := d.p.CacheBytes / SectorBytes
	if d.cacheEnd-d.cacheStart > maxSectors {
		d.cacheStart = d.cacheEnd - maxSectors
	}
}

// BusyTime returns the total mechanism-busy time.
func (d *Disk) BusyTime() time.Duration { return d.busyTotal }

// VolatileBytes reports the immediate-reported write bytes sitting in
// the drive's volatile cache, accepted ("done") but not yet on the
// media. A power cut loses them even though the host saw the write
// complete — the reliability study reports this exposure separately,
// since no host-side flush policy can protect it.
func (d *Disk) VolatileBytes() int64 { return d.dirtyBytes }

// Stats registers the drive's statistics sources.
func (d *Disk) Stats(set *stats.Set) {
	set.Add(d.reads)
	set.Add(d.writes)
	set.Add(d.cacheHits)
	set.Add(d.immReports)
	set.Add(d.seekMS)
	set.Add(d.rotMS)
	set.Add(d.rotHist)
}

func (d *Disk) String() string {
	return fmt.Sprintf("%s: %d cyl × %d heads × %d spt @ %d rpm, %s cache",
		d.p.Name, d.p.Cylinders, d.p.Heads, d.p.SectorsPerTrack, d.p.RPM,
		byteSize(d.p.CacheBytes))
}

func byteSize(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
