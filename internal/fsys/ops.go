package fsys

import (
	"sort"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/sched"
)

// Open returns a handle on an existing file.
func (v *Volume) Open(t sched.Task, path string) (*Handle, error) {
	v.mu.Lock(t)
	f, err := v.lookupLocked(t, path)
	if err != nil {
		v.mu.Unlock(t)
		return nil, err
	}
	f.refs++
	v.mu.Unlock(t)
	f.behavior.opened(t, f)
	v.fs.st.Opens.Inc()
	return &Handle{f: f}, nil
}

// Create makes a new file of the given type at path and opens it.
// Parent directories must exist.
func (v *Volume) Create(t sched.Task, path string, typ core.FileType) (*Handle, error) {
	v.mu.Lock(t)
	h, err := v.createLocked(t, path, typ)
	v.mu.Unlock(t)
	if err == nil {
		h.f.behavior.opened(t, h.f)
		v.fs.st.Creates.Inc()
	}
	return h, err
}

func (v *Volume) createLocked(t sched.Task, path string, typ core.FileType) (*Handle, error) {
	parent, name, err := v.resolveLocked(t, path)
	if err != nil {
		return nil, err
	}
	if _, exists := parent.entries[name]; exists {
		return nil, core.ErrExists
	}
	ino, err := v.lay.AllocInode(t, typ)
	if err != nil {
		return nil, err
	}
	f := v.instantiate(ino)
	v.files[ino.ID] = f
	parent.entries[name] = ino.ID
	if typ == core.TypeDirectory {
		v.mutateIno(t, parent.ino, func() { parent.ino.Nlink++ })
		v.mutateIno(t, ino, func() { ino.Nlink = 2 })
		if err := v.lay.UpdateInode(t, parent.ino); err != nil {
			return nil, err
		}
	}
	if err := v.writeDir(t, parent); err != nil {
		return nil, err
	}
	f.refs++
	v.logIntent(t, cache.Intent{
		Op: cache.IntentCreate, File: ino.ID, Gen: ino.Version,
		Parent: parent.ino.ID, Name: name, Type: typ,
	})
	return &Handle{f: f}, nil
}

// Mkdir creates a directory.
func (v *Volume) Mkdir(t sched.Task, path string) error {
	h, err := v.Create(t, path, core.TypeDirectory)
	if err != nil {
		return err
	}
	return v.Close(t, h)
}

// Symlink creates a symbolic link holding target.
func (v *Volume) Symlink(t sched.Task, path, target string) error {
	v.mu.Lock(t)
	defer v.mu.Unlock(t)
	h, err := v.createLocked(t, path, core.TypeSymlink)
	if err != nil {
		return err
	}
	h.f.target = target
	if err := v.writeSymlink(t, h.f); err != nil {
		return err
	}
	h.f.refs--
	// The create intent above recorded the link's birth; this one
	// carries the target so replay can rebuild the link body.
	v.logIntent(t, cache.Intent{
		Op: cache.IntentSymlink, File: h.f.ino.ID, Name2: target,
	})
	return nil
}

// Readlink returns a symlink's target.
func (v *Volume) Readlink(t sched.Task, path string) (string, error) {
	v.mu.Lock(t)
	defer v.mu.Unlock(t)
	f, err := v.lookupLocked(t, path)
	if err != nil {
		return "", err
	}
	if f.ino.Type != core.TypeSymlink {
		return "", core.ErrInval
	}
	return f.target, nil
}

// Close drops a handle; the last close of an unlinked file frees its
// storage.
func (v *Volume) Close(t sched.Task, h *Handle) error {
	v.mu.Lock(t)
	h.f.refs--
	dead := h.f.unlinked && h.f.refs == 0
	var err error
	if dead {
		err = v.destroyLocked(t, h.f)
	}
	v.mu.Unlock(t)
	h.f.behavior.closed(t, h.f)
	v.fs.st.Closes.Inc()
	return err
}

// Read transfers up to n bytes at the handle position, advancing it.
func (v *Volume) Read(t sched.Task, h *Handle, buf []byte, n int64) (int64, error) {
	h.f.mu.Lock(t)
	defer h.f.mu.Unlock(t)
	got, err := v.readData(t, h.f, h.pos, buf, n)
	h.pos += got
	v.fs.st.Reads.Inc()
	return got, err
}

// ReadAt transfers up to n bytes at offset off.
func (v *Volume) ReadAt(t sched.Task, h *Handle, off int64, buf []byte, n int64) (int64, error) {
	h.f.mu.Lock(t)
	defer h.f.mu.Unlock(t)
	v.fs.st.Reads.Inc()
	return v.readData(t, h.f, off, buf, n)
}

// ReadBorrowAt is the zero-copy form of ReadAt: instead of copying
// into a caller buffer it returns segments that alias the cache
// frames, each frame pinned and loaned for the duration. The caller
// transmits the segments (writev to a socket) and then calls release
// exactly once — until then writers to those blocks wait, though
// flushes still proceed. ok is false when vectored I/O is off or the
// volume moves no real data; use ReadAt then.
func (v *Volume) ReadBorrowAt(t sched.Task, h *Handle, off, n int64) (segs [][]byte, got int64, release func(sched.Task), ok bool, err error) {
	if !v.fs.vectored || v.sim {
		return nil, 0, nil, false, nil
	}
	h.f.mu.Lock(t)
	defer h.f.mu.Unlock(t)
	v.fs.st.Reads.Inc()
	segs, got, release, err = v.readBorrow(t, h.f, off, n)
	return segs, got, release, true, err
}

// Write stores n bytes at the handle position, advancing it.
func (v *Volume) Write(t sched.Task, h *Handle, data []byte, n int64) error {
	h.f.mu.Lock(t)
	defer h.f.mu.Unlock(t)
	if err := v.writeData(t, h.f, h.pos, data, n); err != nil {
		return err
	}
	h.pos += n
	v.fs.st.Writes.Inc()
	return v.lay.UpdateInode(t, h.f.ino)
}

// WriteAt stores n bytes at offset off.
func (v *Volume) WriteAt(t sched.Task, h *Handle, off int64, data []byte, n int64) error {
	h.f.mu.Lock(t)
	defer h.f.mu.Unlock(t)
	if err := v.writeData(t, h.f, off, data, n); err != nil {
		return err
	}
	v.fs.st.Writes.Inc()
	return v.lay.UpdateInode(t, h.f.ino)
}

// Truncate sets the file size, discarding cached blocks beyond it.
func (v *Volume) Truncate(t sched.Task, h *Handle, size int64) error {
	h.f.mu.Lock(t)
	defer h.f.mu.Unlock(t)
	if err := v.truncateLocked(t, h.f, size); err != nil {
		return err
	}
	v.logIntent(t, cache.Intent{
		Op: cache.IntentTruncate, File: h.f.ino.ID, Size: size,
	})
	return nil
}

// Fsync writes the file's dirty blocks and the volume metadata.
func (v *Volume) Fsync(t sched.Task, h *Handle) error {
	v.fs.cache.FlushFile(t, v.ID, h.f.ino.ID)
	return v.lay.Sync(t)
}

// Remove unlinks the file at path. Open files live on until the
// last close; the cached dirty blocks of a closed file are simply
// discarded — the write-saving effect of deletes.
func (v *Volume) Remove(t sched.Task, path string) error {
	v.mu.Lock(t)
	defer v.mu.Unlock(t)
	parent, name, err := v.resolveLocked(t, path)
	if err != nil {
		return err
	}
	id, ok := parent.entries[name]
	if !ok {
		return core.ErrNotFound
	}
	f, err := v.getLocked(t, id)
	if err != nil {
		return err
	}
	if f.ino.Type == core.TypeDirectory {
		return core.ErrIsDir
	}
	delete(parent.entries, name)
	if err := v.writeDir(t, parent); err != nil {
		return err
	}
	v.fs.st.Removes.Inc()
	v.logIntent(t, cache.Intent{
		Op: cache.IntentRemove, File: id,
		Parent: parent.ino.ID, Name: name,
	})
	v.mutateIno(t, f.ino, func() {
		if f.ino.Nlink > 0 {
			f.ino.Nlink--
		}
	})
	if f.refs > 0 {
		f.unlinked = true
		return nil
	}
	return v.destroyLocked(t, f)
}

// Rmdir removes an empty directory.
func (v *Volume) Rmdir(t sched.Task, path string) error {
	v.mu.Lock(t)
	defer v.mu.Unlock(t)
	parent, name, err := v.resolveLocked(t, path)
	if err != nil {
		return err
	}
	id, ok := parent.entries[name]
	if !ok {
		return core.ErrNotFound
	}
	d, err := v.getLocked(t, id)
	if err != nil {
		return err
	}
	if d.ino.Type != core.TypeDirectory {
		return core.ErrNotDir
	}
	if len(d.entries) != 0 {
		return core.ErrNotEmpty
	}
	delete(parent.entries, name)
	v.mutateIno(t, parent.ino, func() { parent.ino.Nlink-- })
	if err := v.writeDir(t, parent); err != nil {
		return err
	}
	if err := v.lay.UpdateInode(t, parent.ino); err != nil {
		return err
	}
	v.logIntent(t, cache.Intent{
		Op: cache.IntentRemove, File: id,
		Parent: parent.ino.ID, Name: name, Type: core.TypeDirectory,
	})
	return v.destroyLocked(t, d)
}

// Rename moves a file or directory within the volume.
func (v *Volume) Rename(t sched.Task, from, to string) error {
	v.mu.Lock(t)
	defer v.mu.Unlock(t)
	fp, fname, err := v.resolveLocked(t, from)
	if err != nil {
		return err
	}
	id, ok := fp.entries[fname]
	if !ok {
		return core.ErrNotFound
	}
	tp, tname, err := v.resolveLocked(t, to)
	if err != nil {
		return err
	}
	if _, exists := tp.entries[tname]; exists {
		return core.ErrExists
	}
	delete(fp.entries, fname)
	tp.entries[tname] = id
	if err := v.writeDir(t, fp); err != nil {
		return err
	}
	if tp != fp {
		if err := v.writeDir(t, tp); err != nil {
			return err
		}
	}
	v.logIntent(t, cache.Intent{
		Op: cache.IntentRename, File: id,
		Parent: fp.ino.ID, Name: fname,
		Parent2: tp.ino.ID, Name2: tname,
	})
	return nil
}

// Readdir lists a directory's names, sorted.
func (v *Volume) Readdir(t sched.Task, path string) ([]string, error) {
	v.mu.Lock(t)
	defer v.mu.Unlock(t)
	d, err := v.lookupLocked(t, path)
	if err != nil {
		return nil, err
	}
	if d.ino.Type != core.TypeDirectory {
		return nil, core.ErrNotDir
	}
	names := make([]string, 0, len(d.entries))
	for n := range d.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// Stat returns a file's attributes by path.
func (v *Volume) Stat(t sched.Task, path string) (FileAttr, error) {
	v.mu.Lock(t)
	defer v.mu.Unlock(t)
	f, err := v.lookupLocked(t, path)
	if err != nil {
		return FileAttr{}, err
	}
	return v.attrIno(t, f.ino), nil
}

// StatHandle returns attributes through an open handle.
func (v *Volume) StatHandle(t sched.Task, h *Handle) FileAttr {
	return v.attrIno(t, h.f.ino)
}

// EnsureFile guarantees path exists (creating parents), used by the
// trace replayer for files that predate the trace. On simulated
// volumes a pre-existing file of the given size gets sticky random
// placement — the paper's educated guess.
func (v *Volume) EnsureFile(t sched.Task, path string, size int64, preexisting bool) (*Handle, error) {
	v.mu.Lock(t)
	if f, err := v.lookupLocked(t, path); err == nil {
		f.refs++
		v.mu.Unlock(t)
		f.behavior.opened(t, f)
		v.fs.st.Opens.Inc()
		return &Handle{f: f}, nil
	}
	// Create missing parent directories.
	parts, err := splitPath(path)
	if err != nil || len(parts) == 0 {
		v.mu.Unlock(t)
		return nil, core.ErrInval
	}
	prefix := ""
	for _, comp := range parts[:len(parts)-1] {
		prefix += "/" + comp
		if _, err := v.lookupLocked(t, prefix); err == core.ErrNotFound {
			if _, err := v.createLocked(t, prefix, core.TypeDirectory); err != nil {
				v.mu.Unlock(t)
				return nil, err
			}
			// createLocked leaves a reference for the returned
			// handle; directories made in passing drop it.
			d, _ := v.lookupLocked(t, prefix)
			d.refs--
		}
	}
	h, err := v.createLocked(t, path, core.TypeRegular)
	if err != nil {
		v.mu.Unlock(t)
		return nil, err
	}
	if preexisting && v.sim && size > 0 {
		if err := v.lay.PlaceExisting(t, h.f.ino, size); err == nil {
			h.f.ino.Size = size
		}
	}
	v.mu.Unlock(t)
	h.f.behavior.opened(t, h.f)
	v.fs.st.Opens.Inc()
	return h, nil
}
