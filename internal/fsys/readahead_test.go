package fsys

import (
	"bytes"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/ffs"
	"repro/internal/layout"
	"repro/internal/lfs"
	"repro/internal/sched"
)

// slowLay charges simulated disk time per data-block read, so
// readahead has something to overlap with.
type slowLay struct {
	layout.Layout
	reads int
}

func (s *slowLay) ReadBlock(t sched.Task, ino *layout.Inode, blk core.BlockNo, data []byte) error {
	s.reads++
	t.Sleep(8e6) // 8 ms
	return s.Layout.ReadBlock(t, ino, blk, data)
}

func (s *slowLay) ReadRun(t sched.Task, ino *layout.Inode, blk core.BlockNo, n int, data []byte) (int, error) {
	s.reads++
	t.Sleep(8e6) // 8 ms per request, however many blocks it carries
	return s.Layout.ReadRun(t, ino, blk, n, data)
}

// raRig assembles a virtual-kernel fsys over the slow layout.
type raRig struct {
	k   *sched.VKernel
	c   *cache.Cache
	fs  *FS
	lay *slowLay
}

func newRARig(t *testing.T, seed int64, cacheBlocks int, fc cache.FlushConfig, ra int) *raRig {
	t.Helper()
	k := sched.NewVirtual(seed)
	part := layout.NewPartition(nullDrv{k, 8192}, 0, 0, 8192, true)
	lay := &slowLay{Layout: lfs.New(k, "simvol", part, lfs.DefaultConfig())}
	store := NewStore()
	c := cache.New(k, cache.Config{Blocks: cacheBlocks, Replace: "lru", Flush: fc, Simulated: true}, store)
	fs := New(k, c, core.DefaultSimMover())
	store.Bind(fs)
	c.Start()
	fs.SetReadahead(ra)
	return &raRig{k: k, c: c, fs: fs, lay: lay}
}

func (r *raRig) run(t *testing.T, body func(tk sched.Task, v *Volume)) {
	t.Helper()
	r.k.Go("test", func(tk sched.Task) {
		defer r.k.Stop()
		r.lay.Format(tk)
		r.lay.Mount(tk)
		v, err := r.fs.AddVolume(tk, 1, r.lay, true)
		if err != nil {
			t.Errorf("AddVolume: %v", err)
			return
		}
		body(tk, v)
	})
	if err := r.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// prepare writes a file of n blocks and flushes it, so reads are
// cold demand misses.
func prepare(t *testing.T, tk sched.Task, v *Volume, n int64) *Handle {
	t.Helper()
	h, err := v.EnsureFile(tk, "/stream", 0, false)
	if err != nil {
		t.Fatalf("EnsureFile: %v", err)
	}
	if err := v.WriteAt(tk, h, 0, nil, n*core.BlockSize); err != nil {
		t.Fatalf("prefill: %v", err)
	}
	if err := v.fs.SyncAll(tk); err != nil {
		t.Fatalf("sync: %v", err)
	}
	// Drop the now-clean blocks so reads are cold demand misses.
	v.fs.cache.DiscardFile(tk, v.ID, h.ID(), 0)
	return h
}

// Sequential reads trigger readahead, and the pre-filled blocks are
// demand hits — the stream overlaps with the simulated disk.
func TestReadaheadSequentialHits(t *testing.T) {
	r := newRARig(t, 1, 256, cache.UPS(), 8)
	r.run(t, func(tk sched.Task, v *Volume) {
		h := prepare(t, tk, v, 64)
		for off := int64(0); off < 64*core.BlockSize; off += 4 * core.BlockSize {
			if _, err := v.ReadAt(tk, h, off, nil, 4*core.BlockSize); err != nil {
				t.Fatalf("read: %v", err)
			}
			tk.Sleep(40e6) // client think time: disk idle to work ahead into
		}
		cs := r.c.CacheStats()
		if cs.ReadaheadFills.Value() == 0 {
			t.Fatal("no readahead fills issued")
		}
		if r.fs.FSStats().Readaheads.Value() == 0 {
			t.Fatal("no readahead batches recorded")
		}
		// Everything past the detection window should be a hit.
		if hits := cs.Hits.Value(); hits < 48 {
			t.Fatalf("hits = %d, want most of the stream", hits)
		}
		v.Close(tk, h)
	})
}

// Clustered readahead over a real data stack: the batches must
// arrive as multi-block device requests, and every byte the client
// streams must be exact — the run is read into a staging buffer and
// distributed into cache frames, so this pins the distribution path.
func TestReadaheadClustered(t *testing.T) {
	k := sched.NewVirtual(7)
	drv := device.NewMemDriver(k, "mem0", 4096, nil)
	part := layout.NewPartition(drv, 0, 0, 4096, false)
	lay := ffs.New(k, "vol0", part, ffs.Config{BlocksPerGroup: 1024, InodesPerGroup: 64})
	lay.SetClusterRun(8)
	store := NewStore()
	c := cache.New(k, cache.Config{Blocks: 128, Replace: "lru", Flush: cache.UPS(), ShardChunk: 8}, store)
	fs := New(k, c, core.RealMover{})
	store.Bind(fs)
	c.Start()
	fs.SetReadahead(8)
	const blocks = 64
	k.Go("test", func(tk sched.Task) {
		defer k.Stop()
		if err := lay.Format(tk); err != nil {
			t.Errorf("format: %v", err)
			return
		}
		if err := lay.Mount(tk); err != nil {
			t.Errorf("mount: %v", err)
			return
		}
		v, err := fs.AddVolume(tk, 1, lay, false)
		if err != nil {
			t.Errorf("AddVolume: %v", err)
			return
		}
		h, err := v.EnsureFile(tk, "/stream", 0, false)
		if err != nil {
			t.Fatalf("EnsureFile: %v", err)
		}
		payload := make([]byte, blocks*core.BlockSize)
		for i := range payload {
			payload[i] = byte(i / 7)
		}
		if err := v.WriteAt(tk, h, 0, payload, int64(len(payload))); err != nil {
			t.Fatalf("prefill: %v", err)
		}
		if err := fs.SyncAll(tk); err != nil {
			t.Fatalf("sync: %v", err)
		}
		c.DiscardFile(tk, v.ID, h.ID(), 0)

		reqBefore := drv.DriverStats().Reads.Value()
		blkBefore := drv.DriverStats().BlocksRead.Value()
		got := make([]byte, len(payload))
		for off := int64(0); off < int64(len(payload)); off += 4 * core.BlockSize {
			if _, err := v.ReadAt(tk, h, off, got[off:off+4*core.BlockSize], 4*core.BlockSize); err != nil {
				t.Fatalf("read: %v", err)
			}
			tk.Sleep(20e6)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("streamed bytes corrupt under clustered readahead")
		}
		reqs := drv.DriverStats().Reads.Value() - reqBefore
		blks := drv.DriverStats().BlocksRead.Value() - blkBefore
		if c.CacheStats().ReadaheadFills.Value() == 0 {
			t.Fatal("no readahead fills issued")
		}
		if reqs == 0 || float64(blks)/float64(reqs) < 2 {
			t.Fatalf("readahead did not cluster: %d blocks in %d requests", blks, reqs)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// Random reads never trigger readahead.
func TestReadaheadNotOnRandom(t *testing.T) {
	r := newRARig(t, 2, 256, cache.UPS(), 8)
	r.run(t, func(tk sched.Task, v *Volume) {
		h := prepare(t, tk, v, 64)
		for _, blk := range []int64{40, 3, 17, 60, 9, 33, 50, 1} {
			if _, err := v.ReadAt(tk, h, blk*core.BlockSize, nil, core.BlockSize); err != nil {
				t.Fatalf("read: %v", err)
			}
		}
		if got := r.c.CacheStats().ReadaheadFills.Value(); got != 0 {
			t.Fatalf("random reads issued %d readahead fills", got)
		}
		v.Close(tk, h)
	})
}

// The satellite regression: under an NVRAM write policy, readahead
// must not evict or flush dirty blocks — the NVRAM residency
// accounting stays exact with readahead on.
func TestReadaheadKeepsNVRAMResidency(t *testing.T) {
	// 32-frame cache, 16-block NVRAM bound, readahead on.
	r := newRARig(t, 3, 32, cache.NVRAMPartial(16), 8)
	r.run(t, func(tk sched.Task, v *Volume) {
		h := prepare(t, tk, v, 96)
		// Dirty exactly the NVRAM bound through a second file.
		hw, err := v.EnsureFile(tk, "/dirty", 0, false)
		if err != nil {
			t.Fatalf("EnsureFile: %v", err)
		}
		if err := v.WriteAt(tk, hw, 0, nil, 16*core.BlockSize); err != nil {
			t.Fatalf("dirty writes: %v", err)
		}
		cs := r.c.CacheStats()
		flushedBefore := cs.FlushedBlocks.Value()
		dirtyBefore := r.c.DirtyCount()
		if dirtyBefore == 0 {
			t.Fatal("setup made no dirty blocks")
		}
		// Stream the cold file with readahead on: fills compete for
		// the few clean frames but must never push dirty data out.
		for off := int64(0); off < 96*core.BlockSize; off += 4 * core.BlockSize {
			if _, err := v.ReadAt(tk, h, off, nil, 4*core.BlockSize); err != nil {
				t.Fatalf("read: %v", err)
			}
			tk.Sleep(40e6)
		}
		if got := r.c.DirtyCount(); got != dirtyBefore {
			t.Fatalf("dirty residency moved: %d -> %d", dirtyBefore, got)
		}
		if got := cs.FlushedBlocks.Value(); got != flushedBefore {
			t.Fatalf("readahead flushed %d blocks", got-flushedBefore)
		}
		for i := int64(0); i < 16; i++ {
			if !r.c.Peek(tk, core.BlockKey{Vol: 1, File: hw.ID(), Blk: core.BlockNo(i)}) {
				t.Fatalf("dirty block %d lost residency", i)
			}
		}
		v.Close(tk, h)
		v.Close(tk, hw)
	})
}

// Truncate while a readahead batch is in flight: the fence drains
// the batch first, so no stale fill reappears past the boundary.
func TestReadaheadTruncateFence(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		r := newRARig(t, seed, 256, cache.UPS(), 8)
		r.run(t, func(tk sched.Task, v *Volume) {
			h := prepare(t, tk, v, 64)
			// Two sequential reads arm the detector and launch a
			// batch past block 8.
			for off := int64(0); off < 8*core.BlockSize; off += 4 * core.BlockSize {
				if _, err := v.ReadAt(tk, h, off, nil, 4*core.BlockSize); err != nil {
					t.Fatalf("read: %v", err)
				}
			}
			// Truncate mid-batch (no think time: the batch is still
			// in flight).
			if err := v.Truncate(tk, h, 4*core.BlockSize); err != nil {
				t.Fatalf("truncate: %v", err)
			}
			for blk := core.BlockNo(4); blk < 64; blk++ {
				if r.c.Peek(tk, core.BlockKey{Vol: 1, File: h.ID(), Blk: blk}) {
					t.Fatalf("seed %d: stale block %d resident after truncate", seed, blk)
				}
			}
			// The file still works.
			if err := v.WriteAt(tk, h, 0, nil, 6*core.BlockSize); err != nil {
				t.Fatalf("write after truncate: %v", err)
			}
			v.Close(tk, h)
		})
	}
}

// Delete while a readahead batch is in flight: destroy fences and
// discards, so a recycled inode id (FFS-style) can never see the
// dead file's blocks.
func TestReadaheadDeleteFence(t *testing.T) {
	r := newRARig(t, 5, 256, cache.UPS(), 8)
	r.run(t, func(tk sched.Task, v *Volume) {
		h := prepare(t, tk, v, 64)
		id := h.ID()
		for off := int64(0); off < 8*core.BlockSize; off += 4 * core.BlockSize {
			if _, err := v.ReadAt(tk, h, off, nil, 4*core.BlockSize); err != nil {
				t.Fatalf("read: %v", err)
			}
		}
		v.Close(tk, h)
		if err := v.Remove(tk, "/stream"); err != nil {
			t.Fatalf("remove: %v", err)
		}
		for blk := core.BlockNo(0); blk < 64; blk++ {
			if r.c.Peek(tk, core.BlockKey{Vol: 1, File: id, Blk: blk}) {
				t.Fatalf("dead file block %d still resident", blk)
			}
		}
	})
}
