package fsys

import (
	"sort"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/sched"
)

// The by-ID operations back the stateless NFS-like front-end: file
// handles name (volume, inode) pairs, so the server resolves against
// inode numbers rather than paths, the way the paper's NFS component
// dispatches incoming requests onto the abstract client interface.

// OpenByID opens a file by inode number.
func (v *Volume) OpenByID(t sched.Task, id core.FileID) (*Handle, error) {
	v.mu.Lock(t)
	f, err := v.getLocked(t, id)
	if err != nil {
		v.mu.Unlock(t)
		return nil, err
	}
	f.refs++
	v.mu.Unlock(t)
	f.behavior.opened(t, f)
	v.fs.st.Opens.Inc()
	return &Handle{f: f}, nil
}

// StatByID returns attributes by inode number.
func (v *Volume) StatByID(t sched.Task, id core.FileID) (FileAttr, error) {
	v.mu.Lock(t)
	defer v.mu.Unlock(t)
	f, err := v.getLocked(t, id)
	if err != nil {
		return FileAttr{}, err
	}
	return v.attrIno(t, f.ino), nil
}

// LookupIn resolves one name within directory dir.
func (v *Volume) LookupIn(t sched.Task, dir core.FileID, name string) (FileAttr, error) {
	v.mu.Lock(t)
	defer v.mu.Unlock(t)
	d, err := v.dirLocked(t, dir)
	if err != nil {
		return FileAttr{}, err
	}
	id, ok := d.entries[name]
	if !ok {
		return FileAttr{}, core.ErrNotFound
	}
	f, err := v.getLocked(t, id)
	if err != nil {
		return FileAttr{}, err
	}
	return v.attrIno(t, f.ino), nil
}

// CreateIn makes a file inside directory dir and returns its
// attributes.
func (v *Volume) CreateIn(t sched.Task, dir core.FileID, name string, typ core.FileType) (FileAttr, error) {
	v.mu.Lock(t)
	defer v.mu.Unlock(t)
	d, err := v.dirLocked(t, dir)
	if err != nil {
		return FileAttr{}, err
	}
	if len(name) > core.MaxNameLen {
		return FileAttr{}, core.ErrNameTooLon
	}
	if _, exists := d.entries[name]; exists {
		return FileAttr{}, core.ErrExists
	}
	ino, err := v.lay.AllocInode(t, typ)
	if err != nil {
		return FileAttr{}, err
	}
	f := v.instantiate(ino)
	v.files[ino.ID] = f
	d.entries[name] = ino.ID
	if typ == core.TypeDirectory {
		v.mutateIno(t, d.ino, func() { d.ino.Nlink++ })
		v.mutateIno(t, ino, func() { ino.Nlink = 2 })
		if err := v.lay.UpdateInode(t, d.ino); err != nil {
			return FileAttr{}, err
		}
	}
	if err := v.writeDir(t, d); err != nil {
		return FileAttr{}, err
	}
	v.fs.st.Creates.Inc()
	v.logIntent(t, cache.Intent{
		Op: cache.IntentCreate, File: ino.ID, Gen: ino.Version,
		Parent: d.ino.ID, Name: name, Type: typ,
	})
	return v.attrIno(t, ino), nil
}

// RemoveIn unlinks name from directory dir.
func (v *Volume) RemoveIn(t sched.Task, dir core.FileID, name string) error {
	v.mu.Lock(t)
	defer v.mu.Unlock(t)
	d, err := v.dirLocked(t, dir)
	if err != nil {
		return err
	}
	id, ok := d.entries[name]
	if !ok {
		return core.ErrNotFound
	}
	f, err := v.getLocked(t, id)
	if err != nil {
		return err
	}
	if f.ino.Type == core.TypeDirectory {
		if len(f.entries) != 0 {
			return core.ErrNotEmpty
		}
		v.mutateIno(t, d.ino, func() { d.ino.Nlink-- })
	}
	delete(d.entries, name)
	if err := v.writeDir(t, d); err != nil {
		return err
	}
	v.fs.st.Removes.Inc()
	v.logIntent(t, cache.Intent{
		Op: cache.IntentRemove, File: id,
		Parent: d.ino.ID, Name: name, Type: f.ino.Type,
	})
	v.mutateIno(t, f.ino, func() {
		if f.ino.Nlink > 0 {
			f.ino.Nlink--
		}
	})
	if f.refs > 0 {
		f.unlinked = true
		return nil
	}
	return v.destroyLocked(t, f)
}

// RenameIn moves fromName in fromDir to toName in toDir.
func (v *Volume) RenameIn(t sched.Task, fromDir core.FileID, fromName string, toDir core.FileID, toName string) error {
	v.mu.Lock(t)
	defer v.mu.Unlock(t)
	fd, err := v.dirLocked(t, fromDir)
	if err != nil {
		return err
	}
	td, err := v.dirLocked(t, toDir)
	if err != nil {
		return err
	}
	id, ok := fd.entries[fromName]
	if !ok {
		return core.ErrNotFound
	}
	if _, exists := td.entries[toName]; exists {
		return core.ErrExists
	}
	delete(fd.entries, fromName)
	td.entries[toName] = id
	if err := v.writeDir(t, fd); err != nil {
		return err
	}
	if td != fd {
		if err := v.writeDir(t, td); err != nil {
			return err
		}
	}
	v.logIntent(t, cache.Intent{
		Op: cache.IntentRename, File: id,
		Parent: fd.ino.ID, Name: fromName,
		Parent2: td.ino.ID, Name2: toName,
	})
	return nil
}

// DirEntry is one readdir result.
type DirEntry struct {
	Name string
	ID   core.FileID
}

// ReaddirByID lists directory dir.
func (v *Volume) ReaddirByID(t sched.Task, dir core.FileID) ([]DirEntry, error) {
	v.mu.Lock(t)
	defer v.mu.Unlock(t)
	d, err := v.dirLocked(t, dir)
	if err != nil {
		return nil, err
	}
	out := make([]DirEntry, 0, len(d.entries))
	for name, id := range d.entries {
		out = append(out, DirEntry{Name: name, ID: id})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// SymlinkIn creates a symlink inside dir.
func (v *Volume) SymlinkIn(t sched.Task, dir core.FileID, name, target string) (FileAttr, error) {
	attr, err := v.CreateIn(t, dir, name, core.TypeSymlink)
	if err != nil {
		return attr, err
	}
	v.mu.Lock(t)
	defer v.mu.Unlock(t)
	f, err := v.getLocked(t, attr.ID)
	if err != nil {
		return attr, err
	}
	f.target = target
	if err := v.writeSymlink(t, f); err != nil {
		return attr, err
	}
	v.logIntent(t, cache.Intent{
		Op: cache.IntentSymlink, File: f.ino.ID, Name2: target,
	})
	return v.attrIno(t, f.ino), nil
}

// ReadlinkByID returns a symlink's target by inode number.
func (v *Volume) ReadlinkByID(t sched.Task, id core.FileID) (string, error) {
	v.mu.Lock(t)
	defer v.mu.Unlock(t)
	f, err := v.getLocked(t, id)
	if err != nil {
		return "", err
	}
	if f.ino.Type != core.TypeSymlink {
		return "", core.ErrInval
	}
	return f.target, nil
}

// SetSizeByID truncates (or extends) a file by inode number,
// backing the SETATTR procedure.
func (v *Volume) SetSizeByID(t sched.Task, id core.FileID, size int64) (FileAttr, error) {
	v.mu.Lock(t)
	f, err := v.getLocked(t, id)
	v.mu.Unlock(t)
	if err != nil {
		return FileAttr{}, err
	}
	f.mu.Lock(t)
	defer f.mu.Unlock(t)
	if size < f.ino.Size {
		if err := v.truncateLocked(t, f, size); err != nil {
			return FileAttr{}, err
		}
	} else {
		v.mutateIno(t, f.ino, func() { f.ino.Size = size })
		if err := v.lay.UpdateInode(t, f.ino); err != nil {
			return FileAttr{}, err
		}
	}
	v.logIntent(t, cache.Intent{
		Op: cache.IntentTruncate, File: f.ino.ID, Size: size,
	})
	return v.attrIno(t, f.ino), nil
}

// dirLocked fetches a directory by id, checking its type.
func (v *Volume) dirLocked(t sched.Task, id core.FileID) (*File, error) {
	d, err := v.getLocked(t, id)
	if err != nil {
		return nil, err
	}
	if d.ino.Type != core.TypeDirectory {
		return nil, core.ErrNotDir
	}
	return d, nil
}
