package fsys

import (
	"encoding/binary"
	"sort"

	"repro/internal/core"
	"repro/internal/sched"
)

// Directory serialization: u32 count, then per entry u64 fileID,
// u16 nameLen, name bytes. Directories keep their authoritative
// entry map in memory while loaded; this form is what goes through
// the cache to disk (or is sized, in the simulator).

// dirBytesSize computes the serialized size without building bytes.
func dirBytesSize(entries map[string]core.FileID) int64 {
	n := int64(4)
	for name := range entries {
		n += 8 + 2 + int64(len(name))
	}
	return n
}

// encodeDir serializes entries deterministically (sorted names).
func encodeDir(entries map[string]core.FileID) []byte {
	names := make([]string, 0, len(entries))
	for n := range entries {
		names = append(names, n)
	}
	sort.Strings(names)
	buf := make([]byte, dirBytesSize(entries))
	le := binary.LittleEndian
	le.PutUint32(buf[0:], uint32(len(names)))
	off := 4
	for _, n := range names {
		le.PutUint64(buf[off:], uint64(entries[n]))
		le.PutUint16(buf[off+8:], uint16(len(n)))
		copy(buf[off+10:], n)
		off += 10 + len(n)
	}
	return buf
}

// decodeDir parses a directory image.
func decodeDir(buf []byte) (map[string]core.FileID, error) {
	out := make(map[string]core.FileID)
	if len(buf) < 4 {
		return out, nil
	}
	le := binary.LittleEndian
	n := int(le.Uint32(buf[0:]))
	off := 4
	for i := 0; i < n; i++ {
		if off+10 > len(buf) {
			return nil, core.ErrInval
		}
		id := core.FileID(le.Uint64(buf[off:]))
		nl := int(le.Uint16(buf[off+8:]))
		if off+10+nl > len(buf) {
			return nil, core.ErrInval
		}
		out[string(buf[off+10:off+10+nl])] = id
		off += 10 + nl
	}
	return out, nil
}

// writeDir persists a directory's current entries through the cache.
// Caller holds v.mu.
func (v *Volume) writeDir(t sched.Task, d *File) error {
	var data []byte
	size := dirBytesSize(d.entries)
	if !v.sim {
		data = encodeDir(d.entries)
	}
	if err := v.writeData(t, d, 0, data, size); err != nil {
		return err
	}
	if size < d.ino.Size {
		// Directory shrank: drop the tail.
		if err := v.truncateLocked(t, d, size); err != nil {
			return err
		}
	}
	v.mutateIno(t, d.ino, func() { d.ino.Size = size })
	return v.lay.UpdateInode(t, d.ino)
}

// loadDirectory reads a directory's entries from storage (real
// volumes). Simulated volumes keep every loaded directory in memory
// for the lifetime of the run, so an unknown one is simply empty.
func (v *Volume) loadDirectory(t sched.Task, d *File) error {
	d.entries = make(map[string]core.FileID)
	if v.sim || d.ino.Size == 0 {
		return nil
	}
	buf := make([]byte, d.ino.Size)
	if _, err := v.readData(t, d, 0, buf, d.ino.Size); err != nil {
		return err
	}
	ents, err := decodeDir(buf)
	if err != nil {
		// A torn log tail can leave a newer directory image on disk
		// than the durable inode size covers (the data block hardened,
		// the inode record with the grown size did not). The image is
		// self-describing, so re-read whole blocks and keep the entries
		// that parse — the crash discipline's loss, not a mount error.
		ents, err = v.loadDirTorn(t, d)
		if err != nil {
			return err
		}
	}
	d.entries = ents
	return nil
}

// loadDirTorn re-reads a directory whose image outgrew its durable
// size, block-aligned and straight from the layout, and prefix-decodes
// whatever complete entries survive.
func (v *Volume) loadDirTorn(t sched.Task, d *File) (map[string]core.FileID, error) {
	nb := (d.ino.Size + core.BlockSize - 1) / core.BlockSize
	buf := make([]byte, nb*core.BlockSize)
	for b := int64(0); b < nb; b++ {
		if err := v.lay.ReadBlock(t, d.ino, core.BlockNo(b),
			buf[b*core.BlockSize:(b+1)*core.BlockSize]); err != nil {
			return nil, err
		}
	}
	return decodeDirPrefix(buf), nil
}

// decodeDirPrefix parses a directory image, stopping (without error)
// at the first entry the buffer cannot complete.
func decodeDirPrefix(buf []byte) map[string]core.FileID {
	out := make(map[string]core.FileID)
	if len(buf) < 4 {
		return out
	}
	le := binary.LittleEndian
	n := int(le.Uint32(buf[0:]))
	off := 4
	for i := 0; i < n; i++ {
		if off+10 > len(buf) {
			return out
		}
		id := core.FileID(le.Uint64(buf[off:]))
		nl := int(le.Uint16(buf[off+8:]))
		if off+10+nl > len(buf) {
			return out
		}
		out[string(buf[off+10:off+10+nl])] = id
		off += 10 + nl
	}
	return out
}

// writeSymlink persists a symlink target as the file's content.
func (v *Volume) writeSymlink(t sched.Task, f *File) error {
	var data []byte
	size := int64(len(f.target))
	if !v.sim {
		data = []byte(f.target)
	}
	if err := v.writeData(t, f, 0, data, size); err != nil {
		return err
	}
	v.mutateIno(t, f.ino, func() { f.ino.Size = size })
	return v.lay.UpdateInode(t, f.ino)
}

// loadSymlink reads a symlink target back (real volumes).
func (v *Volume) loadSymlink(t sched.Task, f *File) error {
	if v.sim || f.ino.Size == 0 {
		return nil
	}
	buf := make([]byte, f.ino.Size)
	if _, err := v.readData(t, f, 0, buf, f.ino.Size); err != nil {
		return err
	}
	f.target = string(buf)
	return nil
}

// resolve walks path and returns the parent directory and leaf name;
// the leaf itself may or may not exist. Caller holds v.mu.
func (v *Volume) resolveLocked(t sched.Task, path string) (parent *File, name string, err error) {
	parts, err := splitPath(path)
	if err != nil {
		return nil, "", err
	}
	if len(parts) == 0 {
		return nil, "", core.ErrInval // the root has no parent
	}
	dir := v.root
	for _, comp := range parts[:len(parts)-1] {
		id, ok := dir.entries[comp]
		if !ok {
			return nil, "", core.ErrNotFound
		}
		next, err := v.getLocked(t, id)
		if err != nil {
			return nil, "", err
		}
		if next.ino.Type != core.TypeDirectory {
			return nil, "", core.ErrNotDir
		}
		dir = next
	}
	return dir, parts[len(parts)-1], nil
}

// lookupLocked returns the file at path. Caller holds v.mu.
func (v *Volume) lookupLocked(t sched.Task, path string) (*File, error) {
	parts, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	f := v.root
	for _, comp := range parts {
		if f.ino.Type != core.TypeDirectory {
			return nil, core.ErrNotDir
		}
		id, ok := f.entries[comp]
		if !ok {
			return nil, core.ErrNotFound
		}
		f, err = v.getLocked(t, id)
		if err != nil {
			return nil, err
		}
	}
	return f, nil
}
