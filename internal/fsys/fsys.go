// Package fsys implements the framework's abstract client interface
// and instantiated files: the file-system front-end with functions
// to open, close, read, write and delete files and to manipulate a
// hierarchical name space. When a file is first accessed its inode
// is loaded, an object of the matching file type is instantiated to
// manage it while in core, and a reference is kept in the global
// file table — exactly the component structure of the paper.
//
// The same package instantiates for PFS (real data through a real
// cache) and Patsy (no data; the mover charges copy time), because
// every data movement goes through core.DataMover and every byte of
// storage through the cache and layout components.
package fsys

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// FS is the abstract client interface over a set of mounted volumes
// sharing one block cache (the paper's server had 14 file systems
// behind a single cache).
type FS struct {
	k     sched.Kernel
	cache *cache.Cache
	mover core.DataMover
	vols  map[core.VolumeID]*Volume
	ra    int
	st    *Stats
	tr    *telemetry.Tracer // nil = untraced (the simulator)

	// vectored enables the zero-copy read paths: scatter-gather
	// frame vectors to the layout and frame loans to the wire.
	vectored bool

	// replaying suppresses the intent log's pressure sync while
	// ReplayNVRAM re-records replayed operations.
	replaying bool
}

// SetReadahead turns on sequential-read readahead: once a file is
// read sequentially, the next n blocks are pulled through the cache
// by a background task so streaming reads overlap with the disk.
// Zero (the default) disables it — the simulator's byte-identical
// configuration. Readahead fills are best-effort: they only take
// free or clean frames (never flushing dirty data, see
// cache.TryStartFill) and are fenced against truncate and delete.
func (fs *FS) SetReadahead(n int) {
	if n < 0 {
		n = 0
	}
	fs.ra = n
}

// Readahead returns the readahead window in blocks (0 = off).
func (fs *FS) Readahead() int { return fs.ra }

// SetVectored enables the zero-copy vectored read path: readahead
// fills hand cache-frame vectors straight to the layout
// (layout.ReadRunVec) instead of staging through a scratch buffer,
// sequential demand misses fetch whole on-disk runs in one
// scatter-gather request, and ReadBorrowAt lends frames out for
// zero-copy reply transmission. Off (the default) keeps the flat
// staging paths — the simulator's byte-identical configuration.
func (fs *FS) SetVectored(on bool) { fs.vectored = on }

// VectoredIO reports whether the zero-copy read path is enabled.
func (fs *FS) VectoredIO() bool { return fs.vectored }

// SetTracer attaches the per-op tracer: read and write paths charge
// their cache and disk time to the op bound to the calling task. A
// nil tracer (the default) keeps every path hook a no-op.
func (fs *FS) SetTracer(tr *telemetry.Tracer) { fs.tr = tr }

// Tracer returns the attached tracer, or nil.
func (fs *FS) Tracer() *telemetry.Tracer { return fs.tr }

// Stats is the front-end statistics plug-in.
type Stats struct {
	Opens, Closes    *stats.Counter
	Reads, Writes    *stats.Counter
	BytesRead        *stats.Counter
	BytesWritten     *stats.Counter
	Creates, Removes *stats.Counter
	ReadLookups      *stats.Counter
	ReadHits         *stats.Counter
	Readaheads       *stats.Counter // readahead batches issued
	RAStreams        *stats.Counter // detector verdicts: a stream formed
	RARandoms        *stats.Counter // detector verdicts: a tracked sequence broke
	IntentSyncs      *stats.Counter // syncs forced by intent-ring pressure
	StagedCopy       *stats.Counter // bytes bounced through staging buffers on flat fallbacks
}

// ReadHitRate returns the fraction of read block lookups served from
// the cache — the paper's read-cache-hit-rate metric.
func (s *Stats) ReadHitRate() float64 {
	if s.ReadLookups.Value() == 0 {
		return 0
	}
	return float64(s.ReadHits.Value()) / float64(s.ReadLookups.Value())
}

// Register adds the sources to set.
func (s *Stats) Register(set *stats.Set) {
	set.Add(s.Opens)
	set.Add(s.Closes)
	set.Add(s.Reads)
	set.Add(s.Writes)
	set.Add(s.BytesRead)
	set.Add(s.BytesWritten)
	set.Add(s.Creates)
	set.Add(s.Removes)
	set.Add(s.ReadLookups)
	set.Add(s.ReadHits)
	set.Add(s.Readaheads)
	set.Add(s.RAStreams)
	set.Add(s.RARandoms)
	set.Add(s.IntentSyncs)
	set.Add(s.StagedCopy)
}

// New creates a file-system front-end. mover separates PFS from
// Patsy: pass core.RealMover{} or a core.SimMover.
func New(k sched.Kernel, c *cache.Cache, mover core.DataMover) *FS {
	return &FS{
		k:     k,
		cache: c,
		mover: mover,
		vols:  make(map[core.VolumeID]*Volume),
		st: &Stats{
			Opens:        stats.NewCounter("fs.opens"),
			Closes:       stats.NewCounter("fs.closes"),
			Reads:        stats.NewCounter("fs.reads"),
			Writes:       stats.NewCounter("fs.writes"),
			BytesRead:    stats.NewCounter("fs.bytes_read"),
			BytesWritten: stats.NewCounter("fs.bytes_written"),
			Creates:      stats.NewCounter("fs.creates"),
			Removes:      stats.NewCounter("fs.removes"),
			ReadLookups:  stats.NewCounter("fs.read_lookups"),
			ReadHits:     stats.NewCounter("fs.read_hits"),
			Readaheads:   stats.NewCounter("fs.readaheads"),
			RAStreams:    stats.NewCounter("fs.ra_stream_verdicts"),
			RARandoms:    stats.NewCounter("fs.ra_random_verdicts"),
			IntentSyncs:  stats.NewCounter("fs.intent_forced_syncs"),
			StagedCopy:   stats.NewCounter("fs.staged_copy_bytes"),
		},
	}
}

// Kernel returns the kernel the front-end runs on.
func (fs *FS) Kernel() sched.Kernel { return fs.k }

// Cache returns the shared block cache.
func (fs *FS) Cache() *cache.Cache { return fs.cache }

// FSStats returns the front-end statistics plug-in.
func (fs *FS) FSStats() *Stats { return fs.st }

// Stats registers all front-end sources.
func (fs *FS) Stats(set *stats.Set) { fs.st.Register(set) }

// Volume is one mounted file system.
type Volume struct {
	ID  core.VolumeID
	fs  *FS
	lay layout.Layout
	mu  sched.Mutex // namespace lock

	files map[core.FileID]*File // global file table
	root  *File
	sim   bool
}

// AddVolume mounts a formatted layout as volume id and creates the
// root directory if the volume is empty.
func (fs *FS) AddVolume(t sched.Task, id core.VolumeID, lay layout.Layout, simulated bool) (*Volume, error) {
	if _, dup := fs.vols[id]; dup {
		return nil, fmt.Errorf("fsys: volume %d already mounted", id)
	}
	v := &Volume{
		ID:    id,
		fs:    fs,
		lay:   lay,
		mu:    fs.k.NewMutex(fmt.Sprintf("vol%d.ns", id)),
		files: make(map[core.FileID]*File),
		sim:   simulated,
	}
	rootIno, err := lay.GetInode(t, core.RootFile)
	if err == core.ErrNotFound {
		rootIno, err = lay.AllocInode(t, core.TypeDirectory)
		if err == nil && rootIno.ID != core.RootFile {
			err = fmt.Errorf("fsys: root allocated as inode %d, want %d", rootIno.ID, core.RootFile)
		}
		if err == nil {
			rootIno.Nlink = 2
			err = lay.UpdateInode(t, rootIno)
		}
	}
	if err != nil {
		return nil, err
	}
	v.root = v.instantiate(rootIno)
	if err := v.loadDirectory(t, v.root); err != nil {
		return nil, err
	}
	v.files[rootIno.ID] = v.root
	fs.vols[id] = v
	return v, nil
}

// Vol returns the mounted volume or nil.
func (fs *FS) Vol(id core.VolumeID) *Volume { return fs.vols[id] }

// FreeBlocks reports the volume's remaining capacity in blocks.
func (v *Volume) FreeBlocks() int64 { return v.lay.FreeBlocks() }

// LayoutName reports the storage layout in use ("lfs", "ffs").
func (v *Volume) LayoutName() string { return v.lay.Name() }

// Simulated reports whether the volume moves no real data.
func (v *Volume) Simulated() bool { return v.sim }

// Root returns the root directory's inode number.
func (v *Volume) Root() core.FileID { return v.root.ino.ID }

// Volumes returns the number of mounted volumes.
func (fs *FS) Volumes() int { return len(fs.vols) }

// SyncAll flushes the cache and checkpoints every volume. With an
// intent log attached this is also the retirement barrier: the log
// sequence is snapshotted before the flush, and a volume's intents up
// to that snapshot retire once its checkpoint is durable — every
// operation they cover is older than the flush, so its directory
// blocks and inode records just became stable. Retirement is gated on
// the flush actually emptying the cache (a failed flush leaves its
// blocks dirty; retiring then would unprotect them) and, for layouts
// exposing a durability watermark, on the watermark not regressing
// across the checkpoint.
func (fs *FS) SyncAll(t sched.Task) error {
	log := fs.cache.Intents()
	var hi uint64
	if log != nil {
		hi = log.Seq()
	}
	fs.cache.FlushAll(t)
	ids := make([]core.VolumeID, 0, len(fs.vols))
	for id := range fs.vols {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	clean := fs.cache.DirtyCount() == 0
	for _, id := range ids {
		v := fs.vols[id]
		var wm0 uint64
		wm, hasWM := v.lay.(layout.DurableWatermark)
		if hasWM {
			wm0 = wm.DurableSeq(t)
		}
		if err := v.lay.Sync(t); err != nil {
			return err
		}
		if log == nil || !clean {
			continue
		}
		if hasWM && wm.DurableSeq(t) < wm0 {
			continue // watermark regressed: do not trust this checkpoint
		}
		log.RetireVol(id, hi)
	}
	return nil
}

// Store returns the cache backing store that routes flushed blocks
// to the owning volume's layout. Wire it as the cache's store:
//
//	st := fsys.NewStore()
//	c := cache.New(k, cfg, st)
//	fs := fsys.New(k, c, mover)
//	st.Bind(fs)
type Store struct {
	fs      *FS
	durable bool
}

// NewStore returns an unbound store.
func NewStore() *Store { return &Store{} }

// Bind attaches the front-end (breaks the construction cycle between
// cache and FS).
func (s *Store) Bind(fs *FS) { s.fs = fs }

// SetDurable makes every flush job end with the layout's write
// barrier, so a block the cache counts as flushed is actually on
// stable storage — required for the NVRAM/UPS safety guarantee (and
// for the update daemon's 30-second bound to mean anything) on the
// on-line server. The simulator leaves it off: its flushes stay
// lazily batched in the open segment, the configuration the paper's
// latency figures measure.
func (s *Store) SetDurable(on bool) { s.durable = on }

// FlushBlocks routes one flush job (all blocks of one file) to the
// owning volume's layout.
func (s *Store) FlushBlocks(t sched.Task, blocks []*cache.Block) error {
	if len(blocks) == 0 {
		return nil
	}
	if s.fs == nil {
		return fmt.Errorf("fsys: store not bound")
	}
	key := blocks[0].Key
	v := s.fs.vols[key.Vol]
	if v == nil {
		return fmt.Errorf("fsys: flush for unmounted volume %d", key.Vol)
	}
	ino, err := v.lay.GetInode(t, key.File)
	if err != nil {
		// The file vanished between dirtying and flushing (deleted
		// with blocks mid-flush); dropping the write is correct.
		return nil
	}
	writes := make([]layout.BlockWrite, 0, len(blocks))
	for _, b := range blocks {
		writes = append(writes, layout.BlockWrite{Blk: b.Key.Blk, Data: b.Data, Size: b.Size})
	}
	if err := v.lay.WriteBlocks(t, ino, writes); err != nil {
		return err
	}
	if s.durable {
		if b, ok := v.lay.(layout.Barrier); ok {
			return b.WriteBarrier(t)
		}
	}
	return nil
}

// splitPath normalizes a path into components.
func splitPath(path string) ([]string, error) {
	parts := strings.Split(path, "/")
	out := parts[:0]
	for _, p := range parts {
		switch p {
		case "", ".":
			continue
		case "..":
			return nil, core.ErrInval // no parent traversal in this FS
		}
		if len(p) > core.MaxNameLen {
			return nil, core.ErrNameTooLon
		}
		out = append(out, p)
	}
	return out, nil
}
