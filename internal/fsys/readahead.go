package fsys

import (
	"repro/internal/core"
	"repro/internal/sched"
)

// Sequential-read readahead: when a file is being read front to
// back, a background task pulls the next window of blocks through
// the cache so the stream's demand reads become hits and the disk
// works ahead of the client. The fills are best-effort
// (cache.TryStartFill): they only claim free or clean frames, so
// readahead can never push dirty blocks out of memory — the NVRAM
// write policies keep their residency guarantee — and never stalls
// behind the flusher.

// maybeReadahead runs the sequential detector and issues the next
// readahead batch. Caller holds f.mu; off/n are the clamped range
// the current read returns.
func (v *Volume) maybeReadahead(t sched.Task, f *File, off, n int64) {
	ra := v.fs.ra
	if ra <= 0 || n <= 0 {
		return
	}
	if f.ino.Type != core.TypeRegular {
		// Directories and symlinks are read under the namespace
		// lock, and multimedia files run their own rate-paced
		// prefetch thread with drop-behind blocks.
		return
	}
	if off == 0 || off != f.raNext {
		// A rewind resets the detector; anything else breaks the
		// streak (offset 0 starts a fresh stream).
		f.raStreak = 0
		if off == 0 {
			f.raIssued = 0
		}
	}
	f.raStreak++
	f.raNext = off + n
	if f.raStreak < 2 {
		return // one read is a point, two make a stream
	}
	lastBlk := core.BlockNo((off + n - 1) / core.BlockSize)
	eofBlk := core.BlockNo((f.ino.Size - 1) / core.BlockSize)
	start := lastBlk + 1
	if start < f.raIssued {
		start = f.raIssued
	}
	end := lastBlk + core.BlockNo(ra)
	if end > eofBlk {
		end = eofBlk
	}
	if start > end {
		return
	}
	f.raIssued = end + 1
	if f.raDone == nil {
		f.raDone = v.fs.k.NewCond("fsys.radone")
	}
	f.raInflight++
	v.fs.st.Readaheads.Inc()
	ino, size := f.ino, f.ino.Size
	v.fs.k.Go("fsys.readahead", func(rt sched.Task) {
		defer func() {
			f.mu.Lock(rt)
			f.raInflight--
			if f.raInflight == 0 {
				f.raDone.Broadcast()
			}
			f.mu.Unlock(rt)
		}()
		for blk := start; blk <= end; blk++ {
			key := core.BlockKey{Vol: v.ID, File: ino.ID, Blk: blk}
			b, ok := v.fs.cache.TryStartFill(rt, key)
			if !ok {
				continue // cached, being filled, or no clean frame
			}
			err := v.lay.ReadBlock(rt, ino, blk, b.Data)
			bsize := core.BlockSize
			if rem := size - int64(blk)*core.BlockSize; rem < int64(bsize) {
				bsize = int(rem)
			}
			v.fs.cache.FinishFill(rt, b, bsize, err)
		}
	})
}

// waitReadaheadLocked fences the readahead pipeline: it returns once
// no batch is in flight for f, so a truncate or delete can discard
// the file's cache blocks without a late fill re-inserting stale
// data behind it. Caller holds f.mu; new batches cannot start while
// it is held.
func (f *File) waitReadaheadLocked(t sched.Task) {
	for f.raInflight > 0 {
		f.raDone.Wait(t, f.mu)
	}
}
