package fsys

import (
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/sched"
)

// Sequential-read readahead: when a file is being read front to
// back, a background task pulls the next window of blocks through
// the cache so the stream's demand reads become hits and the disk
// works ahead of the client. The fills are best-effort
// (cache.TryStartFill): they only claim free or clean frames, so
// readahead can never push dirty blocks out of memory — the NVRAM
// write policies keep their residency guarantee — and never stalls
// behind the flusher.

// maybeReadahead runs the sequential detector and issues the next
// readahead batch. Caller holds f.mu; off/n are the clamped range
// the current read returns.
func (v *Volume) maybeReadahead(t sched.Task, f *File, off, n int64) {
	ra := v.fs.ra
	if ra <= 0 || n <= 0 {
		return
	}
	if f.ino.Type != core.TypeRegular {
		// Directories and symlinks are read under the namespace
		// lock, and multimedia files run their own rate-paced
		// prefetch thread with drop-behind blocks.
		return
	}
	if off == 0 || off != f.raNext {
		// A rewind resets the detector; anything else breaks the
		// streak (offset 0 starts a fresh stream).
		if f.raStreak > 0 {
			v.fs.st.RARandoms.Inc()
		}
		f.raStreak = 0
		if off == 0 {
			f.raIssued = 0
		}
	}
	f.raStreak++
	f.raNext = off + n
	if f.raStreak < 2 {
		return // one read is a point, two make a stream
	}
	if f.raStreak == 2 {
		v.fs.st.RAStreams.Inc()
	}
	lastBlk := core.BlockNo((off + n - 1) / core.BlockSize)
	eofBlk := core.BlockNo((f.ino.Size - 1) / core.BlockSize)
	start := lastBlk + 1
	if start < f.raIssued {
		start = f.raIssued
	}
	end := lastBlk + core.BlockNo(ra)
	if end > eofBlk {
		end = eofBlk
	}
	if start > end {
		return
	}
	f.raIssued = end + 1
	if f.raDone == nil {
		f.raDone = v.fs.k.NewCond("fsys.radone")
	}
	f.raInflight++
	v.fs.st.Readaheads.Inc()
	ino, size := f.ino, f.ino.Size
	v.fs.k.Go("fsys.readahead", func(rt sched.Task) {
		defer func() {
			f.mu.Lock(rt)
			f.raInflight--
			if f.raInflight == 0 {
				f.raDone.Broadcast()
			}
			f.mu.Unlock(rt)
		}()
		// Claim a maximal run of consecutive frames, then fill it
		// with clustered ReadRun calls — one device request per
		// on-disk run instead of one per block. With clustering off
		// every ReadRun covers exactly one block, the classic
		// fill-by-fill pipeline.
		var scratch []byte
		for blk := start; blk <= end; {
			var frames []*cache.Block
			first := blk
			for blk <= end {
				key := core.BlockKey{Vol: v.ID, File: ino.ID, Blk: blk}
				b, ok := v.fs.cache.TryStartFill(rt, key)
				if !ok {
					// Cached, being filled, or no clean frame: skip it
					// and let the claimed run end here.
					blk++
					if len(frames) == 0 {
						first = blk
						continue
					}
					break
				}
				frames = append(frames, b)
				blk++
			}
			for off := 0; off < len(frames); {
				cur := first + core.BlockNo(off)
				got, err := v.readRunInto(rt, ino, cur, frames[off:], &scratch)
				if err == nil && got <= 0 {
					err = core.ErrInval // layouts return >= 1; stop rather than spin
				}
				if err != nil {
					for _, b := range frames[off:] {
						v.fs.cache.FinishFill(rt, b, 0, err)
					}
					break
				}
				for i := 0; i < got; i++ {
					bsize := core.BlockSize
					if rem := size - int64(cur+core.BlockNo(i))*core.BlockSize; rem < int64(bsize) {
						bsize = int(rem)
					}
					v.fs.cache.FinishFill(rt, frames[off+i], bsize, nil)
				}
				off += got
			}
		}
	})
}

// readRunInto reads one clustered run covering a prefix of the
// claimed frames and distributes the bytes into them, returning how
// many frames were filled. With vectored I/O on, the frames' own
// buffers form the scatter-gather vector and the device DMAs into
// them directly; otherwise a multi-frame run stages through a
// scratch buffer and pays one copy per block. Single-block runs (and
// the simulator, which moves no bytes) go straight through.
func (v *Volume) readRunInto(t sched.Task, ino *layout.Inode, blk core.BlockNo, frames []*cache.Block, scratch *[]byte) (int, error) {
	n := len(frames)
	if frames[0].Data == nil {
		return v.lay.ReadRun(t, ino, blk, n, nil)
	}
	if n == 1 {
		return v.lay.ReadRun(t, ino, blk, 1, frames[0].Data)
	}
	if v.fs.vectored {
		bufs := make([][]byte, n)
		for i, b := range frames {
			bufs[i] = b.Data
		}
		if got, ok, err := layout.ReadRunVec(t, v.lay, ino, blk, n, bufs); ok {
			return got, err
		}
	}
	if len(*scratch) < n*core.BlockSize {
		*scratch = make([]byte, n*core.BlockSize)
	}
	got, err := v.lay.ReadRun(t, ino, blk, n, *scratch)
	if err != nil {
		return got, err
	}
	if got > n {
		got = n
	}
	v.fs.st.StagedCopy.Add(int64(got) * core.BlockSize)
	for i := 0; i < got; i++ {
		copy(frames[i].Data, (*scratch)[i*core.BlockSize:(i+1)*core.BlockSize])
	}
	return got, nil
}

// waitReadaheadLocked fences the readahead pipeline: it returns once
// no batch is in flight for f, so a truncate or delete can discard
// the file's cache blocks without a late fill re-inserting stale
// data behind it. Caller holds f.mu; new batches cannot start while
// it is held.
func (f *File) waitReadaheadLocked(t sched.Task) {
	for f.raInflight > 0 {
		f.raDone.Wait(t, f.mu)
	}
}
