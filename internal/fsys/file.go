package fsys

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/sched"
)

// File is an instantiated file: the object that controls a file
// loaded into the file-system. It holds the memory copy of the
// inode, a per-file lock, and the derived behavior for its type.
type File struct {
	vol *Volume
	ino *layout.Inode
	mu  sched.Mutex

	refs     int  // open handles
	unlinked bool // removed while open; freed at last close

	// Directory and symlink in-memory forms (authoritative while
	// loaded; serialized through the cache for persistence).
	entries map[string]core.FileID // directories
	target  string                 // symlinks

	// Sequential-read detector and readahead bookkeeping, all under
	// mu. raDone is created lazily on the first readahead so files
	// never touched by readahead (and every file when readahead is
	// off) cost nothing.
	raNext     int64        // offset the next sequential read would start at
	raStreak   int          // consecutive sequential reads observed
	raIssued   core.BlockNo // blocks below this have been requested
	raInflight int          // outstanding readahead batches
	raDone     sched.Cond   // signaled when raInflight drops to zero

	behavior behavior
}

// behavior is the hook set a derived file type overrides; the base
// file implements defaults. This is the Go form of the paper's
// derived file classes (ordinary files, directories, symbolic
// links, multi-media files).
type behavior interface {
	// opened runs after the file gains its first/next reference;
	// active files spawn their thread of control here.
	opened(t sched.Task, f *File)
	// closed runs after a reference drops.
	closed(t sched.Task, f *File)
	// dropBehind reports whether the file's blocks should leave the
	// cache as soon as they are unpinned (multimedia files protect
	// the cache from sequential floods this way).
	dropBehind() bool
}

// baseBehavior implements the base-file defaults.
type baseBehavior struct{}

func (baseBehavior) opened(sched.Task, *File) {}
func (baseBehavior) closed(sched.Task, *File) {}
func (baseBehavior) dropBehind() bool         { return false }

// mmBehavior is the multimedia derived type: an active file whose
// thread of control pre-loads the cache at the stream rate and whose
// blocks drop behind instead of flooding the cache.
type mmBehavior struct {
	// RateBytesPerSec is the stream consumption rate the prefetch
	// thread sustains.
	RateBytesPerSec int64
	stop            chan struct{}
}

func (m *mmBehavior) dropBehind() bool { return true }

func (m *mmBehavior) opened(t sched.Task, f *File) {
	if m.stop != nil {
		return // already streaming
	}
	m.stop = make(chan struct{})
	stop := m.stop
	rate := m.RateBytesPerSec
	if rate <= 0 {
		rate = 1 << 20
	}
	period := time.Duration(int64(core.BlockSize) * int64(time.Second) / rate)
	k := f.vol.fs.k
	k.Go(fmt.Sprintf("mm-prefetch-f%d", f.ino.ID), func(pt sched.Task) {
		nblocks := core.BlockNo(layout.BlocksForSize(f.ino.Size))
		for blk := core.BlockNo(0); blk < nblocks; blk++ {
			select {
			case <-stop:
				return
			default:
			}
			f.vol.prefetchBlock(pt, f, blk)
			pt.Sleep(period)
		}
	})
}

func (m *mmBehavior) closed(t sched.Task, f *File) {
	if f.refs == 0 && m.stop != nil {
		close(m.stop)
		m.stop = nil
	}
}

// instantiate builds the File object for an inode, choosing the
// derived component by file type, as the front-end does when a file
// is first accessed.
func (v *Volume) instantiate(ino *layout.Inode) *File {
	f := &File{
		vol: v,
		ino: ino,
		mu:  v.fs.k.NewMutex(fmt.Sprintf("vol%d.f%d", v.ID, ino.ID)),
	}
	switch ino.Type {
	case core.TypeMultimedia:
		f.behavior = &mmBehavior{RateBytesPerSec: 1 << 21}
	default:
		f.behavior = baseBehavior{}
	}
	if ino.Type == core.TypeDirectory {
		f.entries = make(map[string]core.FileID)
	}
	return f
}

// get returns the loaded File for id, loading and instantiating it
// on first access. Caller holds v.mu.
func (v *Volume) getLocked(t sched.Task, id core.FileID) (*File, error) {
	if f := v.files[id]; f != nil {
		return f, nil
	}
	ino, err := v.lay.GetInode(t, id)
	if err != nil {
		return nil, err
	}
	f := v.instantiate(ino)
	if ino.Type == core.TypeDirectory {
		if err := v.loadDirectory(t, f); err != nil {
			return nil, err
		}
	}
	if ino.Type == core.TypeSymlink {
		if err := v.loadSymlink(t, f); err != nil {
			return nil, err
		}
	}
	v.files[id] = f
	return f, nil
}

// VolID returns the volume the file lives on.
func (f *File) VolID() core.VolumeID { return f.vol.ID }

// Handle is an open file reference from the global file table.
type Handle struct {
	f   *File
	pos int64
}

// File returns the underlying instantiated file.
func (h *Handle) File() *File { return h.f }

// ID returns the file's inode number.
func (h *Handle) ID() core.FileID { return h.f.ino.ID }

// Size returns the current file size.
func (h *Handle) Size() int64 { return h.f.ino.Size }

// Type returns the file type.
func (h *Handle) Type() core.FileType { return h.f.ino.Type }

// SetPos sets the handle position (absolute seek).
func (h *Handle) SetPos(pos int64) { h.pos = pos }

// Pos returns the handle position.
func (h *Handle) Pos() int64 { return h.pos }

// FileAttr is the stat result.
type FileAttr struct {
	ID    core.FileID
	Type  core.FileType
	Size  int64
	Nlink uint32
	Mode  uint32
	MTime int64
	CTime int64
	// Gen is the inode generation (layout Version): it changes when
	// an inode number is reused, so stateless file handles embedding
	// it go stale instead of aliasing the new file.
	Gen uint64
}

// attrIno snapshots a live inode's attributes under the layout's
// inode publication lock — mutateIno's counterpart for readers. The
// cache flusher and the by-id mutators update these scalar fields
// under that lock, not under any lock a stat path holds, so an
// unlocked read would race them on the real kernel.
func (v *Volume) attrIno(t sched.Task, ino *layout.Inode) FileAttr {
	if il, ok := v.lay.(layout.InodeLocker); ok && !v.fs.k.Virtual() {
		var a FileAttr
		il.WithInode(t, ino, func() { a = attrOf(ino) })
		return a
	}
	return attrOf(ino)
}

func attrOf(ino *layout.Inode) FileAttr {
	return FileAttr{
		ID:    ino.ID,
		Type:  ino.Type,
		Size:  ino.Size,
		Nlink: ino.Nlink,
		Mode:  ino.Mode,
		MTime: ino.MTime,
		CTime: ino.CTime,
		Gen:   ino.Version,
	}
}
