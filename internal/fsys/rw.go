package fsys

import (
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/sched"
	"repro/internal/telemetry"
)

// charge runs fn and adds its elapsed kernel time to op's stage s.
// With no op bound (nil tracer, or an untraced task) fn runs bare —
// the hot path reads no clock.
func (fs *FS) charge(t sched.Task, op *telemetry.Op, s telemetry.Stage, fn func() error) error {
	if op == nil {
		return fn()
	}
	t0 := fs.k.Now()
	err := fn()
	op.Add(s, fs.k.Now().Sub(t0))
	return err
}

// readData moves n bytes at offset off from file f into buf (nil in
// the simulator) through the block cache. It returns the byte count
// actually read (bounded by EOF). Caller holds f's data lock or is
// the only user.
func (v *Volume) readData(t sched.Task, f *File, off int64, buf []byte, n int64) (int64, error) {
	fs := v.fs
	if off >= f.ino.Size {
		return 0, nil
	}
	if off+n > f.ino.Size {
		n = f.ino.Size - off
	}
	// Kick the readahead pipeline before fetching our own blocks, so
	// the background fills overlap with this read's misses too.
	v.maybeReadahead(t, f, off, n)
	op := fs.tr.Current(t)
	var done int64
	for done < n {
		pos := off + done
		blk := core.BlockNo(pos / core.BlockSize)
		bo := pos % core.BlockSize
		chunk := int64(core.BlockSize) - bo
		if chunk > n-done {
			chunk = n - done
		}
		key := core.BlockKey{Vol: v.ID, File: f.ino.ID, Blk: blk}
		fs.st.ReadLookups.Inc()
		var b *cache.Block
		var hit bool
		_ = fs.charge(t, op, telemetry.StageCache, func() error {
			b, hit = fs.cache.GetBlock(t, key)
			return nil
		})
		if hit {
			fs.st.ReadHits.Inc()
		} else {
			if err := fs.charge(t, op, telemetry.StageDisk, func() error {
				return v.lay.ReadBlock(t, f.ino, blk, b.Data)
			}); err != nil {
				fs.cache.FillFailed(t, b)
				return done, err
			}
			size := core.BlockSize
			if rem := f.ino.Size - int64(blk)*core.BlockSize; rem < int64(size) {
				size = int(rem)
			}
			fs.cache.Filled(t, b, size)
		}
		b.NoCache = f.behavior.dropBehind()
		// Move the bytes to the caller.
		if buf != nil && b.Data != nil {
			fs.mover.Move(buf[done:], b.Data[bo:], int(chunk))
		} else if c := fs.mover.CopyCost(int(chunk)); c > 0 {
			t.Sleep(time.Duration(c))
		}
		fs.cache.Release(t, b)
		done += chunk
	}
	fs.st.BytesRead.Add(done)
	return done, nil
}

// writeData moves n bytes into file f at offset off through the
// cache, dirtying blocks under the flush policy's dirty-block bound.
// data may be nil in the simulator.
func (v *Volume) writeData(t sched.Task, f *File, off int64, data []byte, n int64) error {
	fs := v.fs
	op := fs.tr.Current(t)
	var done int64
	for done < n {
		pos := off + done
		blk := core.BlockNo(pos / core.BlockSize)
		bo := pos % core.BlockSize
		chunk := int64(core.BlockSize) - bo
		if chunk > n-done {
			chunk = n - done
		}
		key := core.BlockKey{Vol: v.ID, File: f.ino.ID, Blk: blk}
		var b *cache.Block
		var hit bool
		_ = fs.charge(t, op, telemetry.StageCache, func() error {
			b, hit = fs.cache.GetBlock(t, key)
			return nil
		})
		if !hit {
			partial := bo != 0 || chunk < core.BlockSize
			within := int64(blk)*core.BlockSize < f.ino.Size
			if partial && within {
				// Read-modify-write of an existing block.
				if err := fs.charge(t, op, telemetry.StageDisk, func() error {
					return v.lay.ReadBlock(t, f.ino, blk, b.Data)
				}); err != nil {
					fs.cache.FillFailed(t, b)
					return err
				}
			} else if b.Data != nil {
				for i := range b.Data {
					b.Data[i] = 0
				}
			}
			fs.cache.Filled(t, b, core.BlockSize)
		}
		if data != nil && b.Data != nil {
			if hit {
				// The block is visible to the flusher: reserve it so
				// a concurrent flush never copies a half-updated
				// frame (MarkDirty publishes and releases).
				fs.cache.BeginWrite(t, b)
			}
			fs.mover.Move(b.Data[bo:], data[done:], int(chunk))
		} else if c := fs.mover.CopyCost(int(chunk)); c > 0 {
			t.Sleep(time.Duration(c))
		}
		if sz := int(bo + chunk); sz > b.Size {
			b.Size = sz
		}
		b.NoCache = f.behavior.dropBehind()
		// MarkDirty is where a full NVRAM parks the writer — cache
		// stage, the paper's dirty-drain bottleneck.
		_ = fs.charge(t, op, telemetry.StageCache, func() error {
			fs.cache.MarkDirty(t, b)
			return nil
		})
		fs.cache.Release(t, b)
		done += chunk
	}
	if off+n > f.ino.Size {
		if sz, ok := v.lay.(layout.Sizer); ok && !fs.k.Virtual() {
			// Publish the growth under the layout's lock: on the real
			// kernel the flusher may be packing this inode right now.
			// The virtual kernel is cooperative — direct update, and a
			// schedule identical to the pre-seam simulator.
			sz.GrowSize(t, f.ino, off+n)
		} else {
			f.ino.Size = off + n
		}
	}
	fs.st.BytesWritten.Add(n)
	return nil
}

// prefetchBlock pulls one block into the cache (multimedia active
// files use it from their thread of control).
func (v *Volume) prefetchBlock(t sched.Task, f *File, blk core.BlockNo) {
	key := core.BlockKey{Vol: v.ID, File: f.ino.ID, Blk: blk}
	b, hit := v.fs.cache.GetBlock(t, key)
	if !hit {
		if err := v.lay.ReadBlock(t, f.ino, blk, b.Data); err != nil {
			v.fs.cache.FillFailed(t, b)
			return
		}
		v.fs.cache.Filled(t, b, core.BlockSize)
	}
	v.fs.cache.Release(t, b)
}

// mutateIno applies a scalar inode-field update (Nlink, exact size)
// under the layout's metadata lock on the real kernel, where the
// cache flusher may be encoding the same inode concurrently — the
// GrowSize publication rule, generalized. The virtual kernel is
// cooperative: direct call, simulated schedules untouched. fn must
// only touch inode fields; persisting the change (UpdateInode) stays
// with the caller.
func (v *Volume) mutateIno(t sched.Task, ino *layout.Inode, fn func()) {
	if il, ok := v.lay.(layout.InodeLocker); ok && !v.fs.k.Virtual() {
		il.WithInode(t, ino, fn)
		return
	}
	fn()
}

// truncateLocked shrinks file data: cached blocks past the boundary
// are discarded (dirty ones count as saved writes) and the layout
// frees the storage. Caller holds v.mu or f.mu appropriately.
func (v *Volume) truncateLocked(t sched.Task, f *File, size int64) error {
	from := core.BlockNo(layout.BlocksForSize(size))
	// Fence the readahead pipeline: a fill landing after the discard
	// would re-insert pre-truncate data.
	f.waitReadaheadLocked(t)
	f.raStreak = 0
	if f.raIssued > from {
		f.raIssued = from
	}
	v.fs.cache.DiscardFile(t, v.ID, f.ino.ID, from)
	if err := v.lay.Truncate(t, f.ino, size); err != nil {
		return err
	}
	return v.lay.UpdateInode(t, f.ino)
}

// destroyLocked releases a removed file's storage once the last
// reference is gone. Caller holds v.mu.
func (v *Volume) destroyLocked(t sched.Task, f *File) error {
	// Fence in-flight readahead before discarding: layouts that
	// recycle inode numbers (FFS) must not find stale blocks of the
	// dead file resident under a reused ID. The file has no open
	// handles here, so no new batches can start once in-flight ones
	// drain.
	f.mu.Lock(t)
	f.waitReadaheadLocked(t)
	v.fs.cache.DiscardFile(t, v.ID, f.ino.ID, 0)
	f.mu.Unlock(t)
	delete(v.files, f.ino.ID)
	return v.lay.FreeInode(t, f.ino.ID)
}
