package fsys

import (
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/sched"
	"repro/internal/telemetry"
)

// charge runs fn and adds its elapsed kernel time to op's stage s.
// With no op bound (nil tracer, or an untraced task) fn runs bare —
// the hot path reads no clock.
func (fs *FS) charge(t sched.Task, op *telemetry.Op, s telemetry.Stage, fn func() error) error {
	if op == nil {
		return fn()
	}
	t0 := fs.k.Now()
	err := fn()
	op.Add(s, fs.k.Now().Sub(t0))
	return err
}

// readData moves n bytes at offset off from file f into buf (nil in
// the simulator) through the block cache. It returns the byte count
// actually read (bounded by EOF). Caller holds f's data lock or is
// the only user.
func (v *Volume) readData(t sched.Task, f *File, off int64, buf []byte, n int64) (int64, error) {
	fs := v.fs
	if off >= f.ino.Size {
		return 0, nil
	}
	if off+n > f.ino.Size {
		n = f.ino.Size - off
	}
	// Kick the readahead pipeline before fetching our own blocks, so
	// the background fills overlap with this read's misses too.
	v.maybeReadahead(t, f, off, n)
	op := fs.tr.Current(t)
	var done int64
	for done < n {
		pos := off + done
		blk := core.BlockNo(pos / core.BlockSize)
		bo := pos % core.BlockSize
		chunk := int64(core.BlockSize) - bo
		if chunk > n-done {
			chunk = n - done
		}
		key := core.BlockKey{Vol: v.ID, File: f.ino.ID, Blk: blk}
		fs.st.ReadLookups.Inc()
		var b *cache.Block
		var hit bool
		_ = fs.charge(t, op, telemetry.StageCache, func() error {
			b, hit = fs.cache.GetBlock(t, key)
			return nil
		})
		if hit {
			fs.st.ReadHits.Inc()
		} else {
			if err := fs.charge(t, op, telemetry.StageDisk, func() error {
				return v.readMissRun(t, f, blk, b, bo+(n-done))
			}); err != nil {
				fs.cache.FillFailed(t, b)
				return done, err
			}
			size := core.BlockSize
			if rem := f.ino.Size - int64(blk)*core.BlockSize; rem < int64(size) {
				size = int(rem)
			}
			fs.cache.Filled(t, b, size)
		}
		b.NoCache = f.behavior.dropBehind()
		// Move the bytes to the caller.
		if buf != nil && b.Data != nil {
			fs.mover.Move(buf[done:], b.Data[bo:], int(chunk))
		} else if c := fs.mover.CopyCost(int(chunk)); c > 0 {
			t.Sleep(time.Duration(c))
		}
		fs.cache.Release(t, b)
		done += chunk
	}
	fs.st.BytesRead.Add(done)
	return done, nil
}

// demandRunMax bounds how many blocks one clustered cold miss
// fetches; the layout clamps further at its own run and clustering
// boundaries.
const demandRunMax = 32

// readMissRun fills demand-miss frame b (block blk of f). With
// vectored I/O on and the read covering more blocks — or the file
// being streamed sequentially — it also claims the following frames
// and fills the whole on-disk run with one scatter-gather request,
// so a cold stream gets clustering before the readahead pipeline has
// warmed up. Extra frames are completed here; b stays Busy for the
// caller's Filled/FillFailed. want is how many bytes from the start
// of blk the current read still covers. Caller holds f's data lock.
func (v *Volume) readMissRun(t sched.Task, f *File, blk core.BlockNo, b *cache.Block, want int64) error {
	fs := v.fs
	if !fs.vectored || b.Data == nil {
		return v.lay.ReadBlock(t, f.ino, blk, b.Data)
	}
	nblks := int((want + core.BlockSize - 1) / core.BlockSize)
	if f.raStreak >= 2 && nblks < demandRunMax {
		nblks = demandRunMax // streaming: fetch the whole run
	}
	if max := int((f.ino.Size-1)/core.BlockSize) - int(blk) + 1; nblks > max {
		nblks = max
	}
	if nblks > demandRunMax {
		nblks = demandRunMax
	}
	if nblks <= 1 {
		return v.lay.ReadBlock(t, f.ino, blk, b.Data)
	}
	// Claim follow-on frames; a cached block or frame shortage ends
	// the run early (TryStartFill never blocks or evicts dirty data).
	extra := make([]*cache.Block, 0, nblks-1)
	for i := 1; i < nblks; i++ {
		key := core.BlockKey{Vol: v.ID, File: f.ino.ID, Blk: blk + core.BlockNo(i)}
		eb, ok := fs.cache.TryStartFill(t, key)
		if !ok {
			break
		}
		extra = append(extra, eb)
	}
	abandon := func(from int, cause error) {
		for _, eb := range extra[from:] {
			fs.cache.FinishFill(t, eb, 0, cause)
		}
	}
	if len(extra) == 0 {
		return v.lay.ReadBlock(t, f.ino, blk, b.Data)
	}
	bufs := make([][]byte, 1+len(extra))
	bufs[0] = b.Data
	for i, eb := range extra {
		bufs[i+1] = eb.Data
	}
	got, ok, err := layout.ReadRunVec(t, v.lay, f.ino, blk, len(bufs), bufs)
	if !ok {
		abandon(0, core.ErrInval)
		return v.lay.ReadBlock(t, f.ino, blk, b.Data)
	}
	if err != nil {
		abandon(0, err)
		return err
	}
	for i := 1; i < got && i-1 < len(extra); i++ {
		size := core.BlockSize
		if rem := f.ino.Size - int64(blk+core.BlockNo(i))*core.BlockSize; rem < int64(size) {
			size = int(rem)
		}
		fs.cache.FinishFill(t, extra[i-1], size, nil)
	}
	if got-1 < len(extra) {
		abandon(got-1, core.ErrInval) // short run: free the unfilled claims
	}
	return nil
}

// readBorrow reads like readData but hands the bytes back as
// segments aliasing the cache frames instead of copying them out:
// every covered frame stays pinned and loaned (cache.Borrow) so a
// zero-copy reply can writev it to the socket. The returned release
// must be called exactly once, after the bytes have left the
// process; until then writers to those blocks wait in BeginWrite
// (flushes still proceed — reads and flushes share the frame
// read-only). Caller holds f's data lock for the call itself; the
// loans outlive it.
func (v *Volume) readBorrow(t sched.Task, f *File, off, n int64) (segs [][]byte, got int64, release func(sched.Task), err error) {
	fs := v.fs
	if off >= f.ino.Size {
		return nil, 0, func(sched.Task) {}, nil
	}
	if off+n > f.ino.Size {
		n = f.ino.Size - off
	}
	v.maybeReadahead(t, f, off, n)
	op := fs.tr.Current(t)
	var frames []*cache.Block
	release = func(rt sched.Task) {
		for _, b := range frames {
			fs.cache.Unborrow(rt, b)
			fs.cache.Release(rt, b)
		}
	}
	var done int64
	for done < n {
		pos := off + done
		blk := core.BlockNo(pos / core.BlockSize)
		bo := pos % core.BlockSize
		chunk := int64(core.BlockSize) - bo
		if chunk > n-done {
			chunk = n - done
		}
		key := core.BlockKey{Vol: v.ID, File: f.ino.ID, Blk: blk}
		fs.st.ReadLookups.Inc()
		var b *cache.Block
		var hit bool
		_ = fs.charge(t, op, telemetry.StageCache, func() error {
			b, hit = fs.cache.GetBlock(t, key)
			return nil
		})
		if hit {
			fs.st.ReadHits.Inc()
		} else {
			if err := fs.charge(t, op, telemetry.StageDisk, func() error {
				return v.readMissRun(t, f, blk, b, bo+(n-done))
			}); err != nil {
				fs.cache.FillFailed(t, b)
				release(t)
				return nil, 0, nil, err
			}
			size := core.BlockSize
			if rem := f.ino.Size - int64(blk)*core.BlockSize; rem < int64(size) {
				size = int(rem)
			}
			fs.cache.Filled(t, b, size)
		}
		b.NoCache = f.behavior.dropBehind()
		fs.cache.Borrow(t, b)
		frames = append(frames, b) // keep the pin until release
		segs = append(segs, b.Data[bo:bo+chunk])
		done += chunk
	}
	fs.st.BytesRead.Add(done)
	return segs, done, release, nil
}

// writeData moves n bytes into file f at offset off through the
// cache, dirtying blocks under the flush policy's dirty-block bound.
// data may be nil in the simulator.
func (v *Volume) writeData(t sched.Task, f *File, off int64, data []byte, n int64) error {
	fs := v.fs
	op := fs.tr.Current(t)
	var done int64
	for done < n {
		pos := off + done
		blk := core.BlockNo(pos / core.BlockSize)
		bo := pos % core.BlockSize
		chunk := int64(core.BlockSize) - bo
		if chunk > n-done {
			chunk = n - done
		}
		key := core.BlockKey{Vol: v.ID, File: f.ino.ID, Blk: blk}
		var b *cache.Block
		var hit bool
		_ = fs.charge(t, op, telemetry.StageCache, func() error {
			b, hit = fs.cache.GetBlock(t, key)
			return nil
		})
		if !hit {
			partial := bo != 0 || chunk < core.BlockSize
			within := int64(blk)*core.BlockSize < f.ino.Size
			if partial && within {
				// Read-modify-write of an existing block.
				if err := fs.charge(t, op, telemetry.StageDisk, func() error {
					return v.lay.ReadBlock(t, f.ino, blk, b.Data)
				}); err != nil {
					fs.cache.FillFailed(t, b)
					return err
				}
			} else if b.Data != nil {
				for i := range b.Data {
					b.Data[i] = 0
				}
			}
			fs.cache.Filled(t, b, core.BlockSize)
		}
		if data != nil && b.Data != nil {
			if hit {
				// The block is visible to the flusher: reserve it so
				// a concurrent flush never copies a half-updated
				// frame (MarkDirty publishes and releases).
				fs.cache.BeginWrite(t, b)
			}
			fs.mover.Move(b.Data[bo:], data[done:], int(chunk))
		} else if c := fs.mover.CopyCost(int(chunk)); c > 0 {
			t.Sleep(time.Duration(c))
		}
		if sz := int(bo + chunk); sz > b.Size {
			b.Size = sz
		}
		b.NoCache = f.behavior.dropBehind()
		// MarkDirty is where a full NVRAM parks the writer — cache
		// stage, the paper's dirty-drain bottleneck.
		_ = fs.charge(t, op, telemetry.StageCache, func() error {
			fs.cache.MarkDirty(t, b)
			return nil
		})
		fs.cache.Release(t, b)
		done += chunk
	}
	if off+n > f.ino.Size {
		if sz, ok := v.lay.(layout.Sizer); ok && !fs.k.Virtual() {
			// Publish the growth under the layout's lock: on the real
			// kernel the flusher may be packing this inode right now.
			// The virtual kernel is cooperative — direct update, and a
			// schedule identical to the pre-seam simulator.
			sz.GrowSize(t, f.ino, off+n)
		} else {
			f.ino.Size = off + n
		}
	}
	fs.st.BytesWritten.Add(n)
	return nil
}

// prefetchBlock pulls one block into the cache (multimedia active
// files use it from their thread of control).
func (v *Volume) prefetchBlock(t sched.Task, f *File, blk core.BlockNo) {
	key := core.BlockKey{Vol: v.ID, File: f.ino.ID, Blk: blk}
	b, hit := v.fs.cache.GetBlock(t, key)
	if !hit {
		if err := v.lay.ReadBlock(t, f.ino, blk, b.Data); err != nil {
			v.fs.cache.FillFailed(t, b)
			return
		}
		v.fs.cache.Filled(t, b, core.BlockSize)
	}
	v.fs.cache.Release(t, b)
}

// mutateIno applies a scalar inode-field update (Nlink, exact size)
// under the layout's metadata lock on the real kernel, where the
// cache flusher may be encoding the same inode concurrently — the
// GrowSize publication rule, generalized. The virtual kernel is
// cooperative: direct call, simulated schedules untouched. fn must
// only touch inode fields; persisting the change (UpdateInode) stays
// with the caller.
func (v *Volume) mutateIno(t sched.Task, ino *layout.Inode, fn func()) {
	if il, ok := v.lay.(layout.InodeLocker); ok && !v.fs.k.Virtual() {
		il.WithInode(t, ino, fn)
		return
	}
	fn()
}

// truncateLocked shrinks file data: cached blocks past the boundary
// are discarded (dirty ones count as saved writes) and the layout
// frees the storage. Caller holds v.mu or f.mu appropriately.
func (v *Volume) truncateLocked(t sched.Task, f *File, size int64) error {
	from := core.BlockNo(layout.BlocksForSize(size))
	// Fence the readahead pipeline: a fill landing after the discard
	// would re-insert pre-truncate data.
	f.waitReadaheadLocked(t)
	f.raStreak = 0
	if f.raIssued > from {
		f.raIssued = from
	}
	v.fs.cache.DiscardFile(t, v.ID, f.ino.ID, from)
	if err := v.lay.Truncate(t, f.ino, size); err != nil {
		return err
	}
	return v.lay.UpdateInode(t, f.ino)
}

// destroyLocked releases a removed file's storage once the last
// reference is gone. Caller holds v.mu.
func (v *Volume) destroyLocked(t sched.Task, f *File) error {
	// Fence in-flight readahead before discarding: layouts that
	// recycle inode numbers (FFS) must not find stale blocks of the
	// dead file resident under a reused ID. The file has no open
	// handles here, so no new batches can start once in-flight ones
	// drain.
	f.mu.Lock(t)
	f.waitReadaheadLocked(t)
	v.fs.cache.DiscardFile(t, v.ID, f.ino.ID, 0)
	f.mu.Unlock(t)
	delete(v.files, f.ino.ID)
	return v.lay.FreeInode(t, f.ino.ID)
}
