package fsys

import (
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/sched"
)

// Namespace operations are acknowledged the moment they return, but
// their durability rides the layout checkpoint — the one hole left
// in the battery-backed no-loss guarantee (a created file's data
// survives in NVRAM while the create itself is lost). Each mutating
// namespace operation therefore records a compact intent into the
// cache's intent log (the same persistence domain the dirty blocks
// live in) right after it succeeds: an operation is acknowledged iff
// its intent is recorded. SyncAll retires intents once the covering
// flush + checkpoint is durable; ReplayNVRAM re-executes the
// unretired tail at remount.

// logIntent records one acknowledged namespace operation. A nil
// intent log (Config.IntentSlots == 0) makes this a no-op — the
// pre-intent-log configuration, byte-identical for the simulator.
// Ring pressure forces a SyncAll so retirement keeps the ring
// bounded; replayed operations re-record (protecting them against a
// second cut) but must not recurse into sync.
func (v *Volume) logIntent(t sched.Task, it cache.Intent) {
	log := v.fs.cache.Intents()
	if log == nil {
		return
	}
	it.Vol = v.ID
	if _, pressure := log.Record(v.fs.k.Now(), it); pressure && !v.fs.replaying {
		// The relief valve: flush + checkpoint retires everything
		// recorded so far. Holds only cache and layout locks, so it
		// is safe under the namespace or file lock.
		v.fs.st.IntentSyncs.Inc()
		_ = v.fs.SyncAll(t)
	}
}

// GenOf returns the inode generation number (layout Version) for id
// — the NFS server validates file handles against it so a reused
// inode number yields a stale-handle error instead of aliasing a
// different file.
func (v *Volume) GenOf(t sched.Task, id core.FileID) (uint64, error) {
	v.mu.Lock(t)
	defer v.mu.Unlock(t)
	f, err := v.getLocked(t, id)
	if err != nil {
		return 0, err
	}
	return f.ino.Version, nil
}
