package fsys

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/layout"
	"repro/internal/lfs"
	"repro/internal/sched"
	"repro/internal/stats"
)

// rig is a full PFS-style stack: virtual kernel, real cache, LFS on
// a RAM device.
type rig struct {
	k   *sched.VKernel
	drv device.Driver
	fs  *FS
	v   *Volume
}

// run drives body on a fresh task; the kernel was stopped after
// mounting, so tests construct their own rig per body via runBody.
func runBody(t *testing.T, seed int64, fc cache.FlushConfig, body func(tk sched.Task, r *rig)) *rig {
	t.Helper()
	k := sched.NewVirtual(seed)
	drv := device.NewMemDriver(k, "mem0", 4096, nil)
	part := layout.NewPartition(drv, 0, 0, 4096, false)
	lay := lfs.New(k, "vol1", part, lfs.Config{SegBlocks: 16, MaxInodes: 1 << 12})
	store := NewStore()
	c := cache.New(k, cache.Config{Blocks: 64, Flush: fc}, store)
	fs := New(k, c, core.RealMover{})
	store.Bind(fs)
	c.Start()
	r := &rig{k: k, drv: drv, fs: fs}
	k.Go("test", func(tk sched.Task) {
		if err := lay.Format(tk); err != nil {
			t.Errorf("Format: %v", err)
			k.Stop()
			return
		}
		if err := lay.Mount(tk); err != nil {
			t.Errorf("Mount: %v", err)
			k.Stop()
			return
		}
		v, err := fs.AddVolume(tk, 1, lay, false)
		if err != nil {
			t.Errorf("AddVolume: %v", err)
			k.Stop()
			return
		}
		r.v = v
		body(tk, r)
		k.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return r
}

func TestCreateWriteReadRoundTrip(t *testing.T) {
	runBody(t, 1, cache.UPS(), func(tk sched.Task, r *rig) {
		h, err := r.v.Create(tk, "/hello.txt", core.TypeRegular)
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		msg := []byte("cut-and-paste file systems")
		if err := r.v.Write(tk, h, msg, int64(len(msg))); err != nil {
			t.Fatalf("Write: %v", err)
		}
		h.SetPos(0)
		buf := make([]byte, len(msg))
		n, err := r.v.Read(tk, h, buf, int64(len(msg)))
		if err != nil || n != int64(len(msg)) {
			t.Fatalf("Read: n=%d err=%v", n, err)
		}
		if !bytes.Equal(buf, msg) {
			t.Fatalf("read %q, want %q", buf, msg)
		}
		r.v.Close(tk, h)
	})
}

func TestPersistThroughCacheFlushAndReload(t *testing.T) {
	// Write through the cache, force flush + sync, drop the in-core
	// file table by reopening, then read back — exercising the full
	// cache → layout → device path and back.
	runBody(t, 2, cache.UPS(), func(tk sched.Task, r *rig) {
		h, _ := r.v.Create(tk, "/data.bin", core.TypeRegular)
		want := bytes.Repeat([]byte{0xC3}, 3*core.BlockSize)
		r.v.Write(tk, h, want, int64(len(want)))
		r.v.Close(tk, h)
		if err := r.fs.SyncAll(tk); err != nil {
			t.Fatalf("SyncAll: %v", err)
		}
		// Evict all cached blocks so the read must hit the device.
		r.fs.cache.DiscardFile(tk, 1, h.ID(), 0)
		h2, err := r.v.Open(tk, "/data.bin")
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		got := make([]byte, len(want))
		n, err := r.v.Read(tk, h2, got, int64(len(want)))
		if err != nil || int(n) != len(want) {
			t.Fatalf("read back: n=%d err=%v", n, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("data corrupted through flush cycle")
		}
		r.v.Close(tk, h2)
	})
}

func TestMkdirAndNestedPaths(t *testing.T) {
	runBody(t, 3, cache.UPS(), func(tk sched.Task, r *rig) {
		if err := r.v.Mkdir(tk, "/a"); err != nil {
			t.Fatalf("mkdir /a: %v", err)
		}
		if err := r.v.Mkdir(tk, "/a/b"); err != nil {
			t.Fatalf("mkdir /a/b: %v", err)
		}
		h, err := r.v.Create(tk, "/a/b/c.txt", core.TypeRegular)
		if err != nil {
			t.Fatalf("create nested: %v", err)
		}
		r.v.Close(tk, h)
		names, err := r.v.Readdir(tk, "/a/b")
		if err != nil || len(names) != 1 || names[0] != "c.txt" {
			t.Fatalf("readdir: %v %v", names, err)
		}
		st, err := r.v.Stat(tk, "/a/b/c.txt")
		if err != nil || st.Type != core.TypeRegular {
			t.Fatalf("stat: %+v %v", st, err)
		}
		if _, err := r.v.Open(tk, "/a/missing"); err != core.ErrNotFound {
			t.Fatalf("missing open: %v", err)
		}
		if err := r.v.Mkdir(tk, "/a"); err != core.ErrExists {
			t.Fatalf("duplicate mkdir: %v", err)
		}
	})
}

func TestRemoveSavesWrites(t *testing.T) {
	// Dirty a file, delete it before any flush: the blocks must be
	// discarded, not written — the paper's write-saving effect.
	r := runBody(t, 4, cache.UPS(), func(tk sched.Task, r *rig) {
		h, _ := r.v.Create(tk, "/tmp.dat", core.TypeRegular)
		r.v.Write(tk, h, bytes.Repeat([]byte{1}, 4*core.BlockSize), 4*core.BlockSize)
		r.v.Close(tk, h)
		if err := r.v.Remove(tk, "/tmp.dat"); err != nil {
			t.Fatalf("Remove: %v", err)
		}
		if _, err := r.v.Open(tk, "/tmp.dat"); err != core.ErrNotFound {
			t.Fatalf("removed file opens: %v", err)
		}
	})
	if r.fs.cache.CacheStats().SavedWrites.Value() < 4 {
		t.Fatalf("saved writes = %d, want >= 4",
			r.fs.cache.CacheStats().SavedWrites.Value())
	}
}

func TestUnlinkWhileOpen(t *testing.T) {
	runBody(t, 5, cache.UPS(), func(tk sched.Task, r *rig) {
		h, _ := r.v.Create(tk, "/busy.txt", core.TypeRegular)
		msg := []byte("still here")
		r.v.Write(tk, h, msg, int64(len(msg)))
		if err := r.v.Remove(tk, "/busy.txt"); err != nil {
			t.Fatalf("Remove open file: %v", err)
		}
		// Unix semantics: data remains readable through the handle.
		h.SetPos(0)
		buf := make([]byte, len(msg))
		if n, err := r.v.Read(tk, h, buf, int64(len(msg))); err != nil || n != int64(len(msg)) {
			t.Fatalf("read after unlink: n=%d err=%v", n, err)
		}
		if !bytes.Equal(buf, msg) {
			t.Fatal("data gone while open")
		}
		if err := r.v.Close(tk, h); err != nil {
			t.Fatalf("last close: %v", err)
		}
	})
}

func TestRename(t *testing.T) {
	runBody(t, 6, cache.UPS(), func(tk sched.Task, r *rig) {
		r.v.Mkdir(tk, "/src")
		r.v.Mkdir(tk, "/dst")
		h, _ := r.v.Create(tk, "/src/f", core.TypeRegular)
		r.v.Close(tk, h)
		if err := r.v.Rename(tk, "/src/f", "/dst/g"); err != nil {
			t.Fatalf("Rename: %v", err)
		}
		if _, err := r.v.Stat(tk, "/dst/g"); err != nil {
			t.Fatalf("stat new name: %v", err)
		}
		if _, err := r.v.Stat(tk, "/src/f"); err != core.ErrNotFound {
			t.Fatalf("old name remains: %v", err)
		}
	})
}

func TestRmdirSemantics(t *testing.T) {
	runBody(t, 7, cache.UPS(), func(tk sched.Task, r *rig) {
		r.v.Mkdir(tk, "/d")
		h, _ := r.v.Create(tk, "/d/f", core.TypeRegular)
		r.v.Close(tk, h)
		if err := r.v.Rmdir(tk, "/d"); err != core.ErrNotEmpty {
			t.Fatalf("rmdir non-empty: %v", err)
		}
		r.v.Remove(tk, "/d/f")
		if err := r.v.Rmdir(tk, "/d"); err != nil {
			t.Fatalf("rmdir empty: %v", err)
		}
		if _, err := r.v.Stat(tk, "/d"); err != core.ErrNotFound {
			t.Fatalf("removed dir stats: %v", err)
		}
	})
}

func TestSymlink(t *testing.T) {
	runBody(t, 8, cache.UPS(), func(tk sched.Task, r *rig) {
		if err := r.v.Symlink(tk, "/link", "/the/target"); err != nil {
			t.Fatalf("Symlink: %v", err)
		}
		got, err := r.v.Readlink(tk, "/link")
		if err != nil || got != "/the/target" {
			t.Fatalf("Readlink: %q %v", got, err)
		}
		if _, err := r.v.Readlink(tk, "/"); err != core.ErrInval {
			t.Fatalf("readlink on dir: %v", err)
		}
	})
}

func TestTruncateDiscardsAndShrinks(t *testing.T) {
	runBody(t, 9, cache.UPS(), func(tk sched.Task, r *rig) {
		h, _ := r.v.Create(tk, "/t", core.TypeRegular)
		r.v.Write(tk, h, bytes.Repeat([]byte{9}, 4*core.BlockSize), 4*core.BlockSize)
		if err := r.v.Truncate(tk, h, core.BlockSize); err != nil {
			t.Fatalf("Truncate: %v", err)
		}
		if h.Size() != core.BlockSize {
			t.Fatalf("size = %d", h.Size())
		}
		// Reading past EOF returns nothing.
		buf := make([]byte, core.BlockSize)
		n, _ := r.v.ReadAt(tk, h, 2*core.BlockSize, buf, core.BlockSize)
		if n != 0 {
			t.Fatalf("read past EOF returned %d", n)
		}
		r.v.Close(tk, h)
	})
}

func TestSparseFileHoleReads(t *testing.T) {
	runBody(t, 10, cache.UPS(), func(tk sched.Task, r *rig) {
		h, _ := r.v.Create(tk, "/sparse", core.TypeRegular)
		// Write only block 2; blocks 0-1 are holes.
		r.v.WriteAt(tk, h, 2*core.BlockSize, bytes.Repeat([]byte{7}, core.BlockSize), core.BlockSize)
		buf := make([]byte, core.BlockSize)
		n, err := r.v.ReadAt(tk, h, 0, buf, core.BlockSize)
		if err != nil || n != core.BlockSize {
			t.Fatalf("hole read: n=%d err=%v", n, err)
		}
		if !bytes.Equal(buf, make([]byte, core.BlockSize)) {
			t.Fatal("hole not zero")
		}
		r.v.Close(tk, h)
	})
}

func TestReadHitRateTracked(t *testing.T) {
	r := runBody(t, 11, cache.UPS(), func(tk sched.Task, r *rig) {
		h, _ := r.v.Create(tk, "/f", core.TypeRegular)
		data := bytes.Repeat([]byte{5}, core.BlockSize)
		r.v.Write(tk, h, data, core.BlockSize)
		buf := make([]byte, core.BlockSize)
		for i := 0; i < 9; i++ {
			r.v.ReadAt(tk, h, 0, buf, core.BlockSize)
		}
		r.v.Close(tk, h)
	})
	st := r.fs.FSStats()
	if st.ReadLookups.Value() != 9 || st.ReadHits.Value() != 9 {
		t.Fatalf("read lookups=%d hits=%d (cached file should always hit)",
			st.ReadLookups.Value(), st.ReadHits.Value())
	}
	if st.ReadHitRate() != 1.0 {
		t.Fatalf("hit rate %v", st.ReadHitRate())
	}
}

func TestMultimediaDropBehind(t *testing.T) {
	r := runBody(t, 12, cache.UPS(), func(tk sched.Task, r *rig) {
		h, err := r.v.Create(tk, "/movie.mm", core.TypeMultimedia)
		if err != nil {
			t.Fatalf("create mm: %v", err)
		}
		data := bytes.Repeat([]byte{3}, 8*core.BlockSize)
		r.v.Write(tk, h, data, int64(len(data)))
		r.fs.cache.FlushFile(tk, 1, h.ID())
		// Stream it: read sequentially, then verify the cache did
		// not keep the blocks (drop-behind policy).
		buf := make([]byte, core.BlockSize)
		h.SetPos(0)
		for i := 0; i < 8; i++ {
			r.v.Read(tk, h, buf, core.BlockSize)
		}
		kept := 0
		for i := core.BlockNo(0); i < 8; i++ {
			if r.fs.cache.Peek(tk, core.BlockKey{Vol: 1, File: h.ID(), Blk: i}) {
				kept++
			}
		}
		if kept > 1 {
			t.Fatalf("multimedia file kept %d blocks in cache", kept)
		}
		r.v.Close(tk, h)
		tk.Sleep(time.Second) // let the prefetch task notice the close
	})
	_ = r
}

func TestEnsureFilePreexisting(t *testing.T) {
	// Simulated volume: EnsureFile with preexisting=true gets sticky
	// random placement.
	k := sched.NewVirtual(13)
	part := layout.NewPartition(nullDrv{k, 8192}, 0, 0, 8192, true)
	lay := lfs.New(k, "simvol", part, lfs.Config{SegBlocks: 16})
	store := NewStore()
	c := cache.New(k, cache.Config{Blocks: 64, Flush: cache.UPS(), Simulated: true}, store)
	fs := New(k, c, core.DefaultSimMover())
	store.Bind(fs)
	c.Start()
	k.Go("test", func(tk sched.Task) {
		lay.Format(tk)
		lay.Mount(tk)
		v, err := fs.AddVolume(tk, 1, lay, true)
		if err != nil {
			t.Errorf("AddVolume: %v", err)
			k.Stop()
			return
		}
		h, err := v.EnsureFile(tk, "/usr/data/old.bin", 10*core.BlockSize, true)
		if err != nil {
			t.Errorf("EnsureFile: %v", err)
			k.Stop()
			return
		}
		if h.Size() != 10*core.BlockSize {
			t.Errorf("preexisting size = %d", h.Size())
		}
		// Reading it costs simulated I/O but succeeds with nil buf.
		if _, err := v.Read(tk, h, nil, 3*core.BlockSize); err != nil {
			t.Errorf("sim read: %v", err)
		}
		v.Close(tk, h)
		// Second EnsureFile opens the same file.
		h2, _ := v.EnsureFile(tk, "/usr/data/old.bin", 0, true)
		if h2.ID() != h.ID() {
			t.Error("EnsureFile recreated an existing file")
		}
		v.Close(tk, h2)
		k.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestStatsRegistered(t *testing.T) {
	r := runBody(t, 14, cache.UPS(), func(tk sched.Task, r *rig) {})
	set := stats.NewSet()
	r.fs.Stats(set)
	if set.Len() != 15 {
		t.Fatalf("sources = %d", set.Len())
	}
	if r.fs.Volumes() != 1 || r.fs.Vol(1) == nil {
		t.Fatal("volume table wrong")
	}
}

type nullDrv struct {
	k      sched.Kernel
	blocks int64
}

func (d nullDrv) Name() string                             { return "null" }
func (d nullDrv) Submit(t sched.Task, r *device.Request)   {}
func (d nullDrv) Wait(t sched.Task, r *device.Request)     {}
func (d nullDrv) Do(t sched.Task, r *device.Request) error { return nil }
func (d nullDrv) QueueLen() int                            { return 0 }
func (d nullDrv) CapacityBlocks() int64                    { return d.blocks }
func (d nullDrv) DriverStats() *device.DriverStats         { return nil }
func (d nullDrv) SetInjector(device.Interceptor)           {}
func (d nullDrv) Close() error                             { return nil }
