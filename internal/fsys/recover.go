package fsys

import (
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/sched"
)

// ReplayNVRAM writes the dirty blocks that survived a power cut in
// battery-backed memory (cache.Crash's Survivors) back through the
// freshly recovered layouts — the remount half of the paper's
// NVRAM-safety argument: an acknowledged write either reached the
// log before the cut (roll-forward finds it) or was NVRAM-resident
// (this replays it).
//
// Survivors of files whose metadata never became durable are dropped
// and counted — data without an inode is unreachable by design; the
// paper's policies protect data writes, creation durability is the
// layout's checkpoint discipline.
//
// Call it after the volumes are mounted, and Sync afterwards to make
// the replayed blocks durable.
func (fs *FS) ReplayNVRAM(t sched.Task, survivors []cache.Survivor) (replayed, dropped int, err error) {
	for start := 0; start < len(survivors); {
		end := start
		key := survivors[start].Key
		for end < len(survivors) &&
			survivors[end].Key.Vol == key.Vol && survivors[end].Key.File == key.File {
			end++
		}
		group := survivors[start:end]
		start = end

		v := fs.vols[key.Vol]
		if v == nil {
			dropped += len(group)
			continue
		}
		ino, gerr := v.lay.GetInode(t, key.File)
		if gerr != nil {
			dropped += len(group)
			continue
		}
		writes := make([]layout.BlockWrite, 0, len(group))
		size := ino.Size
		for _, s := range group {
			writes = append(writes, layout.BlockWrite{Blk: s.Key.Blk, Data: s.Data, Size: s.Size})
			if end := int64(s.Key.Blk)*core.BlockSize + int64(s.Size); end > size {
				size = end
			}
		}
		// Grow the size first so the layout (and a striped array's
		// home-shadow mirror) persists the extension with the blocks.
		ino.Size = size
		if werr := v.lay.WriteBlocks(t, ino, writes); werr != nil {
			return replayed, dropped, werr
		}
		if uerr := v.lay.UpdateInode(t, ino); uerr != nil {
			return replayed, dropped, uerr
		}
		replayed += len(writes)
	}
	return replayed, dropped, nil
}
