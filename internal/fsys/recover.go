package fsys

import (
	"sort"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/sched"
)

// ReplayStats summarizes one ReplayNVRAM pass.
type ReplayStats struct {
	// Replayed / Dropped count data-block survivors written back /
	// discarded (no durable or replayed inode covers them).
	Replayed int
	Dropped  int
	// DirBlocks counts directory and symlink survivors superseded by
	// the intent replay: their content is rebuilt from intents, so the
	// stale crash-time images are not written back.
	DirBlocks int
	// IntentsApplied / IntentsNoop / IntentsDropped count intent-log
	// records re-executed, found already durable, and unappliable
	// (e.g. the parent directory itself never survived).
	IntentsApplied int
	IntentsNoop    int
	IntentsDropped int
	// Remapped counts files that came back under a fresh inode number
	// because the original allocation never became durable.
	Remapped int
}

// Blocks returns Replayed+Dropped+DirBlocks — the survivor count the
// pass consumed, for cross-checking against the crash report.
func (s ReplayStats) Blocks() int { return s.Replayed + s.Dropped + s.DirBlocks }

// ReplayNVRAM brings a freshly recovered file system up to the state
// the battery-backed cache acknowledged before the power cut. It has
// two phases:
//
// Phase 1 replays the unretired intent log in sequence order: each
// intent is an acknowledged namespace operation (create, symlink
// body, remove, rename, truncate) whose covering checkpoint had not
// become durable at the cut. Replay is idempotent — an operation the
// layout already holds is a no-op — and survives inode renumbering: a
// create whose original inode never became durable is re-executed
// against the allocator and the new number recorded in a remap table
// that later intents and phase 2 consult. Replayed operations are
// re-recorded into the (new) cache's intent log so a second cut
// during or after recovery replays them again.
//
// Phase 2 writes the surviving dirty data blocks (cache.Crash's
// Survivors) back through the layouts, with the remap applied. This
// is the remount half of the paper's NVRAM-safety argument: an
// acknowledged write either reached the log before the cut
// (roll-forward finds it) or was NVRAM-resident (this replays it).
// Directory and symlink survivors are skipped when intents are in
// play: every unretired directory mutation has its intent, and phase
// 1 already rebuilt the content — writing the crash-time image back
// would clobber it. Survivors of files with neither a durable inode
// nor a covering intent are dropped and counted (with the intent log
// disabled this reproduces the historical drop-on-create behavior).
//
// Call it after the volumes are mounted, and Sync afterwards to make
// the replayed state durable.
func (fs *FS) ReplayNVRAM(t sched.Task, survivors []cache.Survivor, intents []cache.Intent) (ReplayStats, error) {
	var st ReplayStats
	fs.replaying = true
	defer func() { fs.replaying = false }()

	remaps := make(map[core.VolumeID]map[core.FileID]core.FileID)
	remapFor := func(vol core.VolumeID) map[core.FileID]core.FileID {
		m := remaps[vol]
		if m == nil {
			m = make(map[core.FileID]core.FileID)
			remaps[vol] = m
		}
		return m
	}

	// Phase 1: namespace intents, oldest first (the log keeps them in
	// sequence order; sort defensively for merged double-cut logs).
	sort.SliceStable(intents, func(i, j int) bool { return intents[i].Seq < intents[j].Seq })
	for i := range intents {
		it := intents[i]
		v := fs.vols[it.Vol]
		if v == nil {
			st.IntentsDropped++
			continue
		}
		applied, err := v.replayIntent(t, it, remapFor(it.Vol), &st)
		if err != nil {
			return st, err
		}
		if applied {
			st.IntentsApplied++
		}
	}

	// Phase 2: surviving data blocks, grouped by file.
	intentMode := fs.cache.Intents() != nil || len(intents) > 0
	for start := 0; start < len(survivors); {
		end := start
		key := survivors[start].Key
		for end < len(survivors) &&
			survivors[end].Key.Vol == key.Vol && survivors[end].Key.File == key.File {
			end++
		}
		group := survivors[start:end]
		start = end

		v := fs.vols[key.Vol]
		if v == nil {
			st.Dropped += len(group)
			continue
		}
		id := key.File
		if n, ok := remaps[key.Vol][id]; ok {
			id = n
		}
		ino, gerr := v.lay.GetInode(t, id)
		if gerr != nil {
			st.Dropped += len(group)
			continue
		}
		if intentMode && (ino.Type == core.TypeDirectory || ino.Type == core.TypeSymlink) {
			// Namespace content is authoritative in the intent replay;
			// the crash-time directory image may predate it.
			st.DirBlocks += len(group)
			continue
		}
		writes := make([]layout.BlockWrite, 0, len(group))
		size := ino.Size
		for _, s := range group {
			writes = append(writes, layout.BlockWrite{Blk: s.Key.Blk, Data: s.Data, Size: s.Size})
			if end := int64(s.Key.Blk)*core.BlockSize + int64(s.Size); end > size {
				size = end
			}
		}
		// Grow the size first so the layout (and a striped array's
		// home-shadow mirror) persists the extension with the blocks.
		v.mutateIno(t, ino, func() { ino.Size = size })
		if werr := v.lay.WriteBlocks(t, ino, writes); werr != nil {
			return st, werr
		}
		if uerr := v.lay.UpdateInode(t, ino); uerr != nil {
			return st, uerr
		}
		st.Replayed += len(writes)
	}
	return st, nil
}

// replayIntent re-executes one acknowledged namespace operation
// against the recovered volume. Returns applied=true when it changed
// the file system; counts no-ops and unappliable intents in st.
// Layout I/O errors (a second power cut) abort the replay.
func (v *Volume) replayIntent(t sched.Task, it cache.Intent, remap map[core.FileID]core.FileID, st *ReplayStats) (bool, error) {
	mapID := func(id core.FileID) core.FileID {
		if n, ok := remap[id]; ok {
			return n
		}
		return id
	}
	v.mu.Lock(t)
	defer v.mu.Unlock(t)

	switch it.Op {
	case cache.IntentCreate:
		parent, err := v.dirLocked(t, mapID(it.Parent))
		if err != nil {
			st.IntentsDropped++
			return false, nil
		}
		if id, ok := parent.entries[it.Name]; ok {
			if _, err := v.getLocked(t, id); err == nil {
				// Entry and inode both durable (or already replayed).
				if it.File != id {
					remap[it.File] = id
				}
				st.IntentsNoop++
				return false, nil
			}
			// Dangling entry: the directory block outlived the inode.
			// Fall through and re-allocate under the same name.
		}
		// Only the directory entry was lost? If the acknowledged inode
		// itself became durable (FFS writes it synchronously; LFS may
		// have packed it), adopt it: the file keeps its identity —
		// number, generation, content — and pre-crash handles stay
		// valid. The generation check rejects a different life of a
		// recycled slot.
		if it.Gen != 0 {
			if f, err := v.getLocked(t, it.File); err == nil &&
				f.ino.Version == it.Gen && f.ino.Type == it.Type {
				parent.entries[it.Name] = f.ino.ID
				if it.Type == core.TypeDirectory {
					v.mutateIno(t, parent.ino, func() { parent.ino.Nlink++ })
					if err := v.lay.UpdateInode(t, parent.ino); err != nil {
						return false, err
					}
				}
				if err := v.writeDir(t, parent); err != nil {
					return false, err
				}
				v.logIntent(t, cache.Intent{
					Op: cache.IntentCreate, File: f.ino.ID, Gen: f.ino.Version,
					Parent: parent.ino.ID, Name: it.Name, Type: it.Type,
				})
				return true, nil
			}
		}
		ino, err := v.lay.AllocInode(t, it.Type)
		if err != nil {
			return false, err
		}
		if ino.ID != it.File {
			remap[it.File] = ino.ID
			st.Remapped++
		}
		f := v.instantiate(ino)
		v.files[ino.ID] = f
		parent.entries[it.Name] = ino.ID
		if it.Type == core.TypeDirectory {
			v.mutateIno(t, parent.ino, func() { parent.ino.Nlink++ })
			v.mutateIno(t, ino, func() { ino.Nlink = 2 })
			if err := v.lay.UpdateInode(t, parent.ino); err != nil {
				return false, err
			}
			if err := v.lay.UpdateInode(t, ino); err != nil {
				return false, err
			}
		}
		if err := v.writeDir(t, parent); err != nil {
			return false, err
		}
		v.logIntent(t, cache.Intent{
			Op: cache.IntentCreate, File: ino.ID, Gen: ino.Version,
			Parent: parent.ino.ID, Name: it.Name, Type: it.Type,
		})
		return true, nil

	case cache.IntentSymlink:
		f, err := v.getLocked(t, mapID(it.File))
		if err != nil || f.ino.Type != core.TypeSymlink {
			st.IntentsDropped++
			return false, nil
		}
		if f.target == it.Name2 {
			st.IntentsNoop++
			return false, nil
		}
		f.target = it.Name2
		if err := v.writeSymlink(t, f); err != nil {
			return false, err
		}
		v.logIntent(t, cache.Intent{
			Op: cache.IntentSymlink, File: f.ino.ID, Name2: it.Name2,
		})
		return true, nil

	case cache.IntentRemove:
		parent, err := v.dirLocked(t, mapID(it.Parent))
		if err != nil {
			st.IntentsDropped++
			return false, nil
		}
		id, ok := parent.entries[it.Name]
		if !ok {
			st.IntentsNoop++ // never durable, or already replayed
			return false, nil
		}
		delete(parent.entries, it.Name)
		f, gerr := v.getLocked(t, id)
		if gerr == nil && f.ino.Type == core.TypeDirectory {
			v.mutateIno(t, parent.ino, func() { parent.ino.Nlink-- })
			if err := v.lay.UpdateInode(t, parent.ino); err != nil {
				return false, err
			}
		}
		if err := v.writeDir(t, parent); err != nil {
			return false, err
		}
		if gerr == nil {
			v.mutateIno(t, f.ino, func() {
				if f.ino.Nlink > 0 {
					f.ino.Nlink--
				}
			})
			if err := v.destroyLocked(t, f); err != nil {
				return false, err
			}
		}
		v.logIntent(t, cache.Intent{
			Op: cache.IntentRemove, File: id,
			Parent: parent.ino.ID, Name: it.Name, Type: it.Type,
		})
		return true, nil

	case cache.IntentRename:
		fp, err := v.dirLocked(t, mapID(it.Parent))
		if err != nil {
			st.IntentsDropped++
			return false, nil
		}
		tp, err := v.dirLocked(t, mapID(it.Parent2))
		if err != nil {
			st.IntentsDropped++
			return false, nil
		}
		id, ok := fp.entries[it.Name]
		if !ok {
			if tp.entries[it.Name2] == mapID(it.File) {
				st.IntentsNoop++ // already moved
			} else {
				st.IntentsDropped++
			}
			return false, nil
		}
		delete(fp.entries, it.Name)
		tp.entries[it.Name2] = id
		if err := v.writeDir(t, fp); err != nil {
			return false, err
		}
		if tp != fp {
			if err := v.writeDir(t, tp); err != nil {
				return false, err
			}
		}
		v.logIntent(t, cache.Intent{
			Op: cache.IntentRename, File: id,
			Parent: fp.ino.ID, Name: it.Name,
			Parent2: tp.ino.ID, Name2: it.Name2,
		})
		return true, nil

	case cache.IntentTruncate:
		f, err := v.getLocked(t, mapID(it.File))
		if err != nil {
			st.IntentsDropped++
			return false, nil
		}
		size := it.Size
		switch {
		case size < f.ino.Size:
			if err := v.truncateLocked(t, f, size); err != nil {
				return false, err
			}
		case size > f.ino.Size:
			v.mutateIno(t, f.ino, func() { f.ino.Size = size })
			if err := v.lay.UpdateInode(t, f.ino); err != nil {
				return false, err
			}
		default:
			st.IntentsNoop++
			return false, nil
		}
		v.logIntent(t, cache.Intent{
			Op: cache.IntentTruncate, File: f.ino.ID, Size: it.Size,
		})
		return true, nil
	}
	st.IntentsDropped++ // unknown op from a future format: skip
	return false, nil
}
