// Package repro is a Go reproduction of "Cut-and-Paste file-systems:
// integrating simulators and file-systems" (Bosch & Mullender,
// USENIX 1996): a component library from which both a trace-driven
// file-system simulator (Patsy, internal/patsy) and an on-line file
// system (PFS, internal/pfs) are instantiated from the same
// scheduler, cache, storage-layout, device-driver and client-
// interface components.
//
// See README.md for the architecture tour, DESIGN.md for the system
// inventory and experiment index, and EXPERIMENTS.md for the
// paper-versus-measured record. The root bench_test.go regenerates
// every figure of the paper's evaluation.
package repro
