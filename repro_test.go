// Integration tests regenerating the paper's figures end to end
// through the parallel experiment engine, asserting it reproduces
// the sequential reference path byte for byte at fixed seeds — the
// engine's determinism contract at the figure level.
package repro

import (
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
)

const introSeed = 1996

// integrationScale is QuickScale trimmed so the full-figure runs
// stay test-suite friendly.
func integrationScale() experiments.Scale {
	s := experiments.QuickScale()
	s.Duration = 45 * time.Second
	return s
}

// TestFigure5ParallelMatchesSequential regenerates Figure 5 — every
// trace under every policy — both ways and compares the rendered
// figure byte for byte.
func TestFigure5ParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure 5 in -short mode")
	}
	s := integrationScale()
	seqRows, err := experiments.RunFigure5Sequential(s, introSeed, nil)
	if err != nil {
		t.Fatalf("sequential figure 5: %v", err)
	}
	parRows, err := experiments.RunFigure5With(&experiments.Engine{Workers: 8}, s, introSeed, nil)
	if err != nil {
		t.Fatalf("parallel figure 5: %v", err)
	}
	seqFig := experiments.Figure5(seqRows)
	parFig := experiments.Figure5(parRows)
	if seqFig != parFig {
		t.Fatalf("figure 5 diverges between engines:\n--- sequential ---\n%s\n--- parallel ---\n%s", seqFig, parFig)
	}
	// The figure must be a real figure, not agreeing emptiness.
	for _, want := range []string{"Figure 5", "writedelay", "ups", "1b", "5"} {
		if !strings.Contains(seqFig, want) {
			t.Fatalf("figure 5 missing %q:\n%s", want, seqFig)
		}
	}
}

// TestFigureCDFParallelMatchesSequential regenerates the Figure 2
// latency CDF (trace 1a, four policies) both ways, comparing the
// summary figure and the full plottable CDF of every policy.
func TestFigureCDFParallelMatchesSequential(t *testing.T) {
	s := integrationScale()
	seqRuns, err := experiments.RunTraceSequential(s, "1a", introSeed)
	if err != nil {
		t.Fatalf("sequential trace 1a: %v", err)
	}
	parRuns, err := experiments.RunTraceWith(&experiments.Engine{Workers: 4}, s, "1a", introSeed)
	if err != nil {
		t.Fatalf("parallel trace 1a: %v", err)
	}
	seqFig := experiments.FigureCDF("Figure 2", "1a", seqRuns)
	parFig := experiments.FigureCDF("Figure 2", "1a", parRuns)
	if seqFig != parFig {
		t.Fatalf("figure 2 diverges between engines:\n--- sequential ---\n%s\n--- parallel ---\n%s", seqFig, parFig)
	}
	if len(seqRuns) != len(parRuns) {
		t.Fatalf("run counts differ: %d vs %d", len(seqRuns), len(parRuns))
	}
	for i := range seqRuns {
		seqCDF := experiments.FullCDF(seqRuns[i].Report)
		parCDF := experiments.FullCDF(parRuns[i].Report)
		if seqCDF != parCDF {
			t.Fatalf("policy %s: full CDF diverges:\n--- sequential ---\n%s\n--- parallel ---\n%s",
				seqRuns[i].Policy, seqCDF, parCDF)
		}
	}
}

// TestEngineRunIsRepeatable re-runs the same matrix on the parallel
// engine twice: identical seeds must give identical figures run to
// run, not just sequential to parallel.
func TestEngineRunIsRepeatable(t *testing.T) {
	s := integrationScale()
	first, err := experiments.RunTrace(s, "1b", introSeed)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	second, err := experiments.RunTrace(s, "1b", introSeed)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	a := experiments.FigureCDF("Figure 3", "1b", first)
	b := experiments.FigureCDF("Figure 3", "1b", second)
	if a != b {
		t.Fatalf("same-seed reruns diverge:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}
