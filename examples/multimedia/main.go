// Multimedia demonstrates the derived file type the paper motivates:
// a continuous-media file whose instantiated object is "active" — it
// spawns its own thread of control that pre-loads the cache at the
// stream rate — and whose cache policy is drop-behind, so streaming
// a large file does not flood the cache and evict everyone else's
// working set.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/pfs"
	"repro/internal/sched"
)

func main() {
	dir, err := os.MkdirTemp("", "pfs-mm")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	srv, err := pfs.Open(pfs.Config{
		Path:        filepath.Join(dir, "pfs.img"),
		Blocks:      8192,
		CacheBlocks: 64, // deliberately small to show drop-behind
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	const movieBlocks = 48
	err = srv.Do(func(t sched.Task) error {
		// A regular hot file that must stay cached.
		h, err := srv.Vol.Create(t, "/hot.db", core.TypeRegular)
		if err != nil {
			return err
		}
		hot := bytes.Repeat([]byte{0xDB}, 4*core.BlockSize)
		if err := srv.Vol.Write(t, h, hot, int64(len(hot))); err != nil {
			return err
		}
		srv.Vol.Close(t, h)

		// The multimedia file: three quarters of the cache size.
		m, err := srv.Vol.Create(t, "/clip.mm", core.TypeMultimedia)
		if err != nil {
			return err
		}
		frame := bytes.Repeat([]byte{0x4D}, core.BlockSize)
		for i := 0; i < movieBlocks; i++ {
			if err := srv.Vol.WriteAt(t, m, int64(i)*core.BlockSize, frame, core.BlockSize); err != nil {
				return err
			}
		}
		srv.Vol.Close(t, m)
		return srv.FS.SyncAll(t)
	})
	if err != nil {
		log.Fatal(err)
	}

	// Stream the clip while touching the hot file; the stream's
	// blocks drop behind instead of evicting /hot.db.
	err = srv.Do(func(t sched.Task) error {
		hot, err := srv.Vol.Open(t, "/hot.db")
		if err != nil {
			return err
		}
		buf := make([]byte, core.BlockSize)
		srv.Vol.ReadAt(t, hot, 0, buf, core.BlockSize) // warm it

		clip, err := srv.Vol.Open(t, "/clip.mm") // spawns the active thread
		if err != nil {
			return err
		}
		for i := 0; i < movieBlocks; i++ {
			if _, err := srv.Vol.Read(t, clip, buf, core.BlockSize); err != nil {
				return err
			}
		}
		srv.Vol.Close(t, clip)

		kept := 0
		for i := core.BlockNo(0); i < movieBlocks; i++ {
			if srv.Cache.Peek(t, core.BlockKey{Vol: 1, File: clip.ID(), Blk: i}) {
				kept++
			}
		}
		hotCached := srv.Cache.Peek(t, core.BlockKey{Vol: 1, File: hot.ID(), Blk: 0})
		fmt.Printf("streamed %d blocks; %d stream blocks left in cache (drop-behind)\n", movieBlocks, kept)
		fmt.Printf("hot file still cached: %v\n", hotCached)
		srv.Vol.Close(t, hot)
		if kept > movieBlocks/4 {
			return fmt.Errorf("drop-behind failed: %d blocks kept", kept)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("multimedia example OK")
}
