// Tracereplay demonstrates the full off-line loop: hand-craft a
// work load with the probabilistic generator, write it to a trace
// file in the Sprite-style binary format, read it back, replay it in
// a Patsy instance, and print the latency distribution — Figures
// 2-4 in miniature.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/cache"
	"repro/internal/experiments"
	"repro/internal/patsy"
	"repro/internal/trace"
)

func main() {
	dir, err := os.MkdirTemp("", "tracereplay")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "trace5.tr")

	// 1. Generate the trace-5 work load (large writes + stat/read
	// mix) and persist it.
	scale := experiments.QuickScale()
	scale.Duration = 2 * time.Minute
	recs := scale.Trace("5", 42)
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	codec, _ := trace.NewFormat("sprite")
	if err := codec.Write(f, recs); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fi, _ := os.Stat(path)
	fmt.Printf("generated %d records (%v): %d bytes on disk\n", len(recs), trace.Summary(recs), fi.Size())

	// 2. Read it back — replaying a recorded trace, as with the
	// real Sprite tapes.
	f2, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	loaded, err := codec.Read(f2)
	f2.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d records back\n", len(loaded))

	// 3. Replay under the UPS policy and show the distribution.
	rep, err := patsy.Run(scale.Config(42, cache.UPS()), "5", loaded)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d ops, mean %v, read hit rate %.1f%%\n\n",
		rep.WallOps, rep.MeanLatency().Round(time.Microsecond), 100*rep.ReadHit)
	fmt.Println(rep.Result.Overall.Render())
}
