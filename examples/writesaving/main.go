// Writesaving reruns the paper's central experiment at bench scale:
// the same trace replayed under the Unix 30-second-update policy,
// the UPS write-saving policy, and the two NVRAM policies, printing
// a Figure-5 style comparison.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/experiments"
)

func main() {
	scale := experiments.QuickScale()
	scale.Duration = 3 * time.Minute
	fmt.Printf("replaying trace 1a for %v under four flush policies...\n\n", scale.Duration)

	runs, err := experiments.RunTrace(scale, "1a", 1996)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-16s %12s %10s %10s %8s\n", "policy", "mean", "flushed", "saved", "readhit")
	for _, r := range runs {
		fmt.Printf("%-16s %12s %10d %10d %7.1f%%\n",
			r.Policy,
			r.Report.MeanLatency().Round(time.Microsecond),
			r.Report.Flushed,
			r.Report.Saved,
			100*r.Report.ReadHit)
	}
	fmt.Println()

	// The paper's conclusion, verified live.
	byName := map[string]time.Duration{}
	for _, r := range runs {
		byName[r.Policy] = r.Report.MeanLatency()
	}
	if byName["ups"] < byName["writedelay"] {
		fmt.Println("as in the paper: the UPS write-saving policy beats the 30-second-update policy —")
		fmt.Println("delaying writes keeps disk queues short even though cache hit rates drop.")
	} else {
		fmt.Println("note: at this tiny scale the UPS advantage did not materialize; try a longer -duration.")
	}
}
