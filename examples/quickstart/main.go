// Quickstart: create an on-line PFS instance backed by an image
// file, store and retrieve files through the abstract client
// interface, and survive a restart.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/pfs"
	"repro/internal/sched"
)

func main() {
	dir, err := os.MkdirTemp("", "pfs-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	image := filepath.Join(dir, "pfs.img")

	// First life: format, write some files.
	srv, err := pfs.Open(pfs.Config{Path: image, Blocks: 4096, CacheBlocks: 256})
	if err != nil {
		log.Fatal(err)
	}
	err = srv.Do(func(t sched.Task) error {
		if err := srv.Vol.Mkdir(t, "/docs"); err != nil {
			return err
		}
		h, err := srv.Vol.Create(t, "/docs/hello.txt", core.TypeRegular)
		if err != nil {
			return err
		}
		msg := []byte("hello from the Pegasus file system\n")
		if err := srv.Vol.Write(t, h, msg, int64(len(msg))); err != nil {
			return err
		}
		return srv.Vol.Close(t, h)
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Close(); err != nil { // sync + checkpoint
		log.Fatal(err)
	}
	fmt.Println("wrote /docs/hello.txt and shut the server down")

	// Second life: reopen the image and read everything back.
	srv2, err := pfs.Open(pfs.Config{Path: image, Blocks: 4096, CacheBlocks: 256})
	if err != nil {
		log.Fatal(err)
	}
	defer srv2.Close()
	err = srv2.Do(func(t sched.Task) error {
		names, err := srv2.Vol.Readdir(t, "/docs")
		if err != nil {
			return err
		}
		fmt.Printf("after restart, /docs holds %v\n", names)
		h, err := srv2.Vol.Open(t, "/docs/hello.txt")
		if err != nil {
			return err
		}
		buf := make([]byte, h.Size())
		if _, err := srv2.Vol.Read(t, h, buf, h.Size()); err != nil {
			return err
		}
		fmt.Printf("contents: %s", buf)
		if !bytes.Contains(buf, []byte("Pegasus")) {
			return fmt.Errorf("contents corrupted")
		}
		return srv2.Vol.Close(t, h)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("quickstart OK")
}
