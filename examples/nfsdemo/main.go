// Nfsdemo runs the whole on-line stack in one process: a PFS server
// with its network front-end on loopback, and a protocol client
// doing a realistic session against it — the PFS side of the
// cut-and-paste story.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/nfs"
	"repro/internal/pfs"
)

func main() {
	dir, err := os.MkdirTemp("", "pfs-nfsdemo")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	srv, err := pfs.Open(pfs.Config{
		Path:        filepath.Join(dir, "pfs.img"),
		Blocks:      4096,
		CacheBlocks: 256,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	addr, err := srv.ServeNFS("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server on %s\n", addr)

	cl, err := nfs.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	root, rootAttr, err := cl.Mount(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mounted volume 1: root inode %d (%s)\n", rootAttr.ID, rootAttr.Type)

	// A session: project dir, two files, a rename, a listing.
	proj, _, err := cl.Mkdir(root, "project")
	if err != nil {
		log.Fatal(err)
	}
	readme, _, err := cl.Create(proj, "README")
	if err != nil {
		log.Fatal(err)
	}
	text := []byte("cut-and-paste file systems: the on-line half\n")
	if _, err := cl.Write(readme, 0, text); err != nil {
		log.Fatal(err)
	}
	if _, _, err := cl.Create(proj, "draft.txt"); err != nil {
		log.Fatal(err)
	}
	if err := cl.Rename(proj, "draft.txt", proj, "final.txt"); err != nil {
		log.Fatal(err)
	}
	if _, _, err := cl.Symlink(proj, "latest", "final.txt"); err != nil {
		log.Fatal(err)
	}

	ents, err := cl.Readdir(proj)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("project/ holds:")
	for _, e := range ents {
		_, attr, _ := cl.Lookup(proj, e.Name)
		fmt.Printf("  %-10s %6d  %s\n", attr.Type, attr.Size, e.Name)
	}

	back, err := cl.Read(readme, 0, 1024)
	if err != nil || !bytes.Equal(back, text) {
		log.Fatalf("read back failed: %v", err)
	}
	fmt.Printf("README round-tripped over the wire: %s", back)

	info, err := cl.StatFS(root)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("volume: layout %s, %d free blocks\n", info.Layout, info.FreeBlocks)
	fmt.Println("nfsdemo OK")
}
