// Benchmarks regenerating the paper's evaluation. Each figure of
// the evaluation section has bench targets here; custom metrics
// carry the simulation results (mean latency, blocks flushed) and
// ns/op carries the simulator's own cost — the paper's "slowness of
// the simulator" lesson made measurable. The figure and ablation
// targets run through the parallel experiment engine (one simulation
// per CPU); the *Sequential variants keep the pre-engine path for
// A/B wall-clock comparison.
//
//	go test -bench=Fig2 -benchmem .
//	go test -bench=. -benchmem .
package repro

import (
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/disk"
	"repro/internal/experiments"
	"repro/internal/layout"
	"repro/internal/lfs"
	"repro/internal/patsy"
	"repro/internal/sched"
	"repro/internal/trace"
)

const benchSeed = 1996

// benchScale is the benchmark rig: small enough to iterate, loaded
// enough to queue.
func benchScale() experiments.Scale {
	s := experiments.QuickScale()
	s.Duration = 90 * time.Second
	return s
}

// runPolicy replays one (trace, policy) pair per iteration and
// reports the simulation's results as custom metrics.
func runPolicy(b *testing.B, traceName string, fc cache.FlushConfig) {
	b.Helper()
	s := benchScale()
	recs := s.Trace(traceName, benchSeed)
	var rep *patsy.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = patsy.Run(s.Config(benchSeed, fc), traceName, recs)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.MeanLatency().Microseconds())/1e3, "simlat-ms")
	b.ReportMetric(float64(rep.Flushed), "blk-flushed")
	b.ReportMetric(float64(rep.WallOps), "trace-ops")
	b.ReportMetric(100*rep.ReadHit, "readhit-%")
}

// --- Figure 2: latency CDF, trace 1a, four policies ---

func BenchmarkFig2Trace1aWriteDelay(b *testing.B) { runPolicy(b, "1a", cache.WriteDelay()) }
func BenchmarkFig2Trace1aUPS(b *testing.B)        { runPolicy(b, "1a", cache.UPS()) }
func BenchmarkFig2Trace1aNVRAMWhole(b *testing.B) {
	runPolicy(b, "1a", cache.NVRAMWhole(benchScale().NVRAMBlocks))
}
func BenchmarkFig2Trace1aNVRAMPartial(b *testing.B) {
	runPolicy(b, "1a", cache.NVRAMPartial(benchScale().NVRAMBlocks))
}

// --- Figure 3: latency CDF, trace 1b (parallel large writes) ---

func BenchmarkFig3Trace1bWriteDelay(b *testing.B) { runPolicy(b, "1b", cache.WriteDelay()) }
func BenchmarkFig3Trace1bUPS(b *testing.B)        { runPolicy(b, "1b", cache.UPS()) }
func BenchmarkFig3Trace1bNVRAMWhole(b *testing.B) {
	runPolicy(b, "1b", cache.NVRAMWhole(benchScale().NVRAMBlocks))
}
func BenchmarkFig3Trace1bNVRAMPartial(b *testing.B) {
	runPolicy(b, "1b", cache.NVRAMPartial(benchScale().NVRAMBlocks))
}

// --- Figure 4: latency CDF, trace 5 (large writes + stat/read) ---

func BenchmarkFig4Trace5WriteDelay(b *testing.B) { runPolicy(b, "5", cache.WriteDelay()) }
func BenchmarkFig4Trace5UPS(b *testing.B)        { runPolicy(b, "5", cache.UPS()) }
func BenchmarkFig4Trace5NVRAMWhole(b *testing.B) {
	runPolicy(b, "5", cache.NVRAMWhole(benchScale().NVRAMBlocks))
}
func BenchmarkFig4Trace5NVRAMPartial(b *testing.B) {
	runPolicy(b, "5", cache.NVRAMPartial(benchScale().NVRAMBlocks))
}

// --- Figure 5: mean latency, every trace × every policy ---

// BenchmarkFig5AllTraces regenerates the full figure through the
// parallel experiment engine (one worker per CPU).
func BenchmarkFig5AllTraces(b *testing.B) {
	s := benchScale()
	s.Duration = 45 * time.Second
	var rows []experiments.Fig5Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunFigure5(s, benchSeed, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// Surface the headline ordering as metrics: UPS vs write-delay
	// mean across traces.
	var ups, wd time.Duration
	for _, row := range rows {
		for _, r := range row.Runs {
			switch r.Policy {
			case "ups":
				ups += r.Report.MeanLatency()
			case "writedelay":
				wd += r.Report.MeanLatency()
			}
		}
	}
	n := time.Duration(len(rows))
	if n > 0 {
		b.ReportMetric(float64((ups/n).Microseconds())/1e3, "ups-ms")
		b.ReportMetric(float64((wd/n).Microseconds())/1e3, "writedelay-ms")
	}
}

// BenchmarkFig5AllTracesSequential is the pre-engine reference path,
// the A side of the parallel engine's wall-clock comparison.
func BenchmarkFig5AllTracesSequential(b *testing.B) {
	s := benchScale()
	s.Duration = 45 * time.Second
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFigure5Sequential(s, benchSeed, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineFullQuickMatrix runs the complete quick evaluation
// matrix — every trace × every policy — as one engine batch, the
// engine's end-to-end cost per full evaluation.
func BenchmarkEngineFullQuickMatrix(b *testing.B) {
	s := benchScale()
	s.Duration = 45 * time.Second
	m := experiments.Matrix{Scale: s, Seeds: []int64{benchSeed}}
	for i := 0; i < b.N; i++ {
		results, err := experiments.Parallel().RunMatrix(m)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(results)), "sims")
		}
	}
}

// --- Ablations (DESIGN.md index) ---

func benchAblation(b *testing.B, run func(experiments.Scale) (string, error)) {
	b.Helper()
	s := benchScale()
	s.Duration = 45 * time.Second
	for i := 0; i < b.N; i++ {
		if _, err := run(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationReplacement(b *testing.B) {
	benchAblation(b, func(s experiments.Scale) (string, error) {
		return experiments.AblateReplacement(nil, s, "1a", benchSeed)
	})
}

func BenchmarkAblationQueueSched(b *testing.B) {
	benchAblation(b, func(s experiments.Scale) (string, error) {
		return experiments.AblateQueueSched(nil, s, "1a", benchSeed)
	})
}

func BenchmarkAblationLayoutLFSvsFFS(b *testing.B) {
	benchAblation(b, func(s experiments.Scale) (string, error) {
		return experiments.AblateLayout(nil, s, "1a", benchSeed)
	})
}

func BenchmarkAblationDiskModel(b *testing.B) {
	benchAblation(b, func(s experiments.Scale) (string, error) {
		return experiments.AblateDiskModel(nil, s, "1a", benchSeed)
	})
}

func BenchmarkAblationCleaner(b *testing.B) {
	benchAblation(b, func(s experiments.Scale) (string, error) {
		return experiments.AblateCleaner(nil, s, benchSeed)
	})
}

func BenchmarkAblationNVRAMSize(b *testing.B) {
	benchAblation(b, func(s experiments.Scale) (string, error) {
		return experiments.AblateNVRAMSize(nil, s, benchSeed)
	})
}

// --- Component micro-benchmarks ---

// BenchmarkDiskModelRandomRead measures the HP 97560 model's
// simulated random-read service time and the simulator's cost per
// simulated I/O.
func BenchmarkDiskModelRandomRead(b *testing.B) {
	k := sched.NewVirtual(benchSeed)
	d := disk.New(k, disk.HP97560("d0"), nullConn{})
	d.Start()
	var mean time.Duration
	done := make(chan struct{})
	k.Go("host", func(t sched.Task) {
		rng := k.Rand()
		var total time.Duration
		for i := 0; i < b.N; i++ {
			lba := rng.Int63n(d.CapacitySectors() - 8)
			r := &disk.IOReq{Op: disk.Read, LBA: lba, Sectors: 8, Done: k.NewEvent("io")}
			start := k.Now()
			d.Submit(t, r)
			r.Done.Wait(t)
			total += k.Now().Sub(start)
		}
		if b.N > 0 {
			mean = total / time.Duration(b.N)
		}
		close(done)
		k.Stop()
	})
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
	<-done
	b.ReportMetric(float64(mean.Microseconds())/1e3, "simlat-ms")
}

// BenchmarkLFSSequentialWrite measures log-write throughput through
// the real (RAM-backed) stack.
func BenchmarkLFSSequentialWrite(b *testing.B) {
	k := sched.NewVirtual(benchSeed)
	blocks := int64(1 << 16) // 256 MB RAM device
	drv := device.NewMemDriver(k, "mem0", blocks, nil)
	part := layout.NewPartition(drv, 0, 0, blocks, false)
	l := lfs.New(k, "bench", part, lfs.DefaultConfig())
	buf := make([]byte, core.BlockSize)
	k.Go("w", func(t sched.Task) {
		l.Format(t)
		l.Mount(t)
		ino, _ := l.AllocInode(t, core.TypeRegular)
		b.ResetTimer() // exclude device allocation and format
		for i := 0; i < b.N; i++ {
			blk := core.BlockNo(i % 4096)
			l.WriteBlocks(t, ino, []layout.BlockWrite{{Blk: blk, Data: buf, Size: core.BlockSize}})
		}
		k.Stop()
	})
	b.SetBytes(core.BlockSize)
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCacheHit measures the cache's hit path.
func BenchmarkCacheHit(b *testing.B) {
	k := sched.NewVirtual(benchSeed)
	c := cache.New(k, cache.Config{Blocks: 64, Flush: cache.UPS(), Simulated: true}, nullStore{})
	c.Start()
	k.Go("u", func(t sched.Task) {
		key := core.BlockKey{Vol: 1, File: 1, Blk: 0}
		blk, _ := c.GetBlock(t, key)
		c.Filled(t, blk, core.BlockSize)
		c.Release(t, blk)
		for i := 0; i < b.N; i++ {
			blk, hit := c.GetBlock(t, key)
			if !hit {
				b.Error("unexpected miss")
			}
			c.Release(t, blk)
		}
		k.Stop()
	})
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSchedulerContextSwitch measures the virtual kernel's task
// hand-off cost — the price of one simulated event.
func BenchmarkSchedulerContextSwitch(b *testing.B) {
	k := sched.NewVirtual(benchSeed)
	k.Go("yielder", func(t sched.Task) {
		for i := 0; i < b.N; i++ {
			t.Yield()
		}
		k.Stop()
	})
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTraceGeneration measures work-load synthesis.
func BenchmarkTraceGeneration(b *testing.B) {
	p := trace.Profiles()["1a"]
	p.Volumes = 4
	var n int
	for i := 0; i < b.N; i++ {
		n = len(trace.Generate(p, benchSeed, time.Minute))
	}
	b.ReportMetric(float64(n), "records")
}

type nullConn struct{}

func (nullConn) Send(t sched.Task, n int64) time.Duration { return 0 }

type nullStore struct{}

func (nullStore) FlushBlocks(t sched.Task, blocks []*cache.Block) error { return nil }
